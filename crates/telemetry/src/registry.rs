//! A zero-dependency metrics registry: named counters, gauges, and
//! fixed-bucket log-linear histograms.
//!
//! The registry exists so the simulation can report *distributional*
//! telemetry (queue-depth occupancy, PFC pause durations) alongside plain
//! counters, while preserving the repository's determinism contract:
//!
//! * Every structure is keyed by `BTreeMap`, so iteration — and therefore
//!   the JSON/CSV export — is byte-stable across runs and across `--jobs N`.
//! * Histograms use *fixed* log-linear buckets (exact below 16, then four
//!   sub-buckets per power of two), so merging registries produced by
//!   parallel workers is an element-wise sum with no data-dependent bucket
//!   boundaries.
//! * All arithmetic is integer; no floats touch the stored state.
//!
//! Each registry also carries a `meta` section of string provenance
//! (`build_profile`, `cores`, `jobs`, `scale`, …) so downstream tools like
//! `benchcmp` can refuse apples-to-oranges comparisons. Meta merges
//! first-wins: the fold keeps the provenance of the run that stamped it.
//!
//! The export schema is `"tlt-metrics/v1"`; [`Registry::parse`] parses it
//! back — with a positional diagnostic on failure — so `trace_inspect
//! --metrics` can render (or cleanly reject) a file it did not write.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Export schema identifier written by [`Registry::to_json`].
pub const METRICS_SCHEMA: &str = "tlt-metrics/v1";

/// Number of fixed histogram buckets: 16 exact values (0..=15) plus four
/// sub-buckets for each power of two from 2^4 through 2^63.
pub const HIST_BUCKETS: usize = 16 + 60 * 4;

/// Bucket index of a value (log-linear: exact below 16, then 4 sub-buckets
/// per octave).
fn bucket_index(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros() as usize; // >= 4 here
        let sub = ((v >> (octave - 2)) & 3) as usize;
        16 + (octave - 4) * 4 + sub
    }
}

/// Lower bound of bucket `idx` (the value reported for quantiles).
fn bucket_lo(idx: usize) -> u64 {
    if idx < 16 {
        idx as u64
    } else {
        let rel = idx - 16;
        let octave = 4 + rel / 4;
        let sub = (rel % 4) as u64;
        (1u64 << octave) + (sub << (octave - 2))
    }
}

/// Inclusive upper bound of bucket `idx` (used by the midpoint estimator).
fn bucket_hi(idx: usize) -> u64 {
    if idx < 16 {
        idx as u64
    } else if idx + 1 >= HIST_BUCKETS {
        u64::MAX
    } else {
        bucket_lo(idx + 1) - 1
    }
}

/// A fixed-bucket log-linear histogram of unsigned samples.
///
/// Relative bucket error is bounded by 1/4 above 16 and zero below it —
/// coarse enough to stay tiny (256 buckets), precise enough for p99-style
/// tail reporting of queue depths and pause durations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Hist {
    /// Samples observed.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; HIST_BUCKETS],
        }
    }
}

impl Hist {
    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Smallest observed value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Integer mean of the observed values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Lower bound of the bucket holding the `pct`-th percentile sample
    /// (`pct` in 0..=100; integer arithmetic, so deterministic).
    pub fn quantile(&self, pct: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count - 1) * pct.min(100) / 100;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                return bucket_lo(i);
            }
        }
        self.max
    }

    /// Bucket-midpoint percentile estimator at per-mille resolution (`q`
    /// in 0..=1000, so the p999 tail is expressible — `quantile_permille(999)`).
    ///
    /// Like [`Hist::quantile`] this is pure integer arithmetic over the
    /// log-linear buckets (deterministic and mergeable, no stored
    /// samples), but it estimates with the *midpoint* of the selected
    /// bucket, clamped to the observed min/max. Buckets are 1/4-octave
    /// wide above 16, so the estimate is within ±12.5% of the true sample
    /// value — the bounded-memory alternative to a per-request sample
    /// vector at thousands-of-hosts scale.
    pub fn quantile_permille(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count - 1) * q.min(1000) / 1000;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                let lo = bucket_lo(i);
                let mid = lo + (bucket_hi(i) - lo) / 2;
                return mid.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Element-wise merge (the multi-worker fold).
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs in value order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (bucket_lo(i), *n))
            .collect()
    }

    /// Rebuilds a histogram from exported `(lower_bound, count)` pairs.
    ///
    /// Returns `None` if a lower bound is not an exact bucket boundary (the
    /// export is corrupt), a count overflows, or the summary fields are
    /// inconsistent.
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        pairs: &[(u64, u64)],
    ) -> Option<Hist> {
        let mut h = Hist {
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
            buckets: vec![0; HIST_BUCKETS],
        };
        let mut total = 0u64;
        for &(lo, n) in pairs {
            let idx = bucket_index(lo);
            if bucket_lo(idx) != lo {
                return None;
            }
            h.buckets[idx] = h.buckets[idx].checked_add(n)?;
            total = total.checked_add(n)?;
        }
        if total != count {
            return None;
        }
        Some(h)
    }
}

/// The registry: named counters (sum-merged), gauges (max-merged), and
/// histograms (bucket-merged), plus string provenance metadata
/// (first-wins-merged). See the module docs for the contract.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Registry {
    meta: BTreeMap<String, String>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<String, Hist>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `by` to counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        match self.counters.get_mut(name) {
            Some(v) => *v += by,
            None => {
                self.counters.insert(name.to_string(), by);
            }
        }
    }

    /// Raises gauge `name` to `v` if `v` is larger (watermark semantics —
    /// the only gauge flavor that merges deterministically across workers).
    pub fn gauge_max(&mut self, name: &str, v: u64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = (*g).max(v),
            None => {
                self.gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Records one sample into histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        match self.hists.get_mut(name) {
            Some(h) => h.observe(v),
            None => {
                let mut h = Hist::default();
                h.observe(v);
                self.hists.insert(name.to_string(), h);
            }
        }
    }

    /// Folds a prebuilt histogram into `name` (creating it when absent) —
    /// lets hot paths accumulate into a local [`Hist`] with no name lookup
    /// and publish once at the end of the run.
    pub fn merge_hist(&mut self, name: &str, h: &Hist) {
        match self.hists.get_mut(name) {
            Some(mine) => mine.merge(h),
            None => {
                self.hists.insert(name.to_string(), h.clone());
            }
        }
    }

    /// Stamps provenance metadata `key` = `value` (overwriting).
    pub fn set_meta(&mut self, key: &str, value: &str) {
        self.meta.insert(key.to_string(), value.to_string());
    }

    /// Provenance value for `key`, if stamped.
    pub fn meta_get(&self, key: &str) -> Option<&str> {
        self.meta.get(key).map(|v| v.as_str())
    }

    /// All provenance metadata in key order.
    pub fn meta(&self) -> impl Iterator<Item = (&str, &str)> {
        self.meta.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name` (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram `name`, if any sample was recorded.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Hist)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been *recorded* (provenance metadata alone does
    /// not count — an empty run stays empty even after stamping).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Folds `other` into `self`: counters sum, gauges max, histograms
    /// bucket-merge, meta first-wins. Names present in either side survive,
    /// so folding the per-worker registries in plan order reproduces the
    /// sequential result.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.meta {
            if !self.meta.contains_key(k) {
                self.meta.insert(k.clone(), v.clone());
            }
        }
        for (k, v) in &other.counters {
            self.inc(k, *v);
        }
        for (k, v) in &other.gauges {
            self.gauge_max(k, *v);
        }
        for (k, h) in &other.hists {
            match self.hists.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.hists.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Serializes as `tlt-metrics/v1` JSON (name-sorted, byte-stable).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n  \"schema\": \"");
        s.push_str(METRICS_SCHEMA);
        s.push('"');
        self.push_body(&mut s);
        s.push_str("\n}\n");
        s
    }

    /// Writes the shared body sections (`meta` when non-empty, then
    /// `counters`/`gauges`/`hists`) starting with a leading comma, so both
    /// the metrics and profile schemas wrap the same section encoder.
    pub(crate) fn push_body(&self, s: &mut String) {
        if !self.meta.is_empty() {
            s.push_str(",\n  \"meta\": {");
            push_string_map(s, &self.meta);
            s.push('}');
        }
        s.push_str(",\n  \"counters\": {");
        push_scalar_map(s, &self.counters);
        s.push_str("},\n  \"gauges\": {");
        push_scalar_map(s, &self.gauges);
        s.push_str("},\n  \"hists\": {");
        let mut first = true;
        for (k, h) in &self.hists {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str("\n    ");
            push_json_string(s, k);
            let _ = write!(
                s,
                ": {{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                h.count,
                h.sum,
                h.min(),
                h.max()
            );
            for (i, (lo, n)) in h.nonzero_buckets().iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[{lo},{n}]");
            }
            s.push_str("]}");
        }
        if !self.hists.is_empty() {
            s.push_str("\n  ");
        }
        s.push('}');
    }

    /// Serializes as CSV (`kind,name,field,value`), for spreadsheet use.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("kind,name,field,value\n");
        for (k, v) in &self.meta {
            let _ = writeln!(s, "meta,{k},value,{v}");
        }
        for (k, v) in &self.counters {
            let _ = writeln!(s, "counter,{k},value,{v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(s, "gauge,{k},value,{v}");
        }
        for (k, h) in &self.hists {
            let _ = writeln!(s, "hist,{k},count,{}", h.count);
            let _ = writeln!(s, "hist,{k},sum,{}", h.sum);
            let _ = writeln!(s, "hist,{k},min,{}", h.min());
            let _ = writeln!(s, "hist,{k},max,{}", h.max());
            let _ = writeln!(s, "hist,{k},p50,{}", h.quantile(50));
            let _ = writeln!(s, "hist,{k},p99,{}", h.quantile(99));
        }
        s
    }

    /// Parses a `tlt-metrics/v1` JSON export, reporting *why* (and roughly
    /// where) a malformed or truncated file was rejected.
    pub fn parse(text: &str) -> Result<Registry, String> {
        let mut p = Parser::new(text);
        let mut reg = Registry::new();
        let mut saw_schema = false;
        p.expect('{')?;
        loop {
            let key = p.string()?;
            p.expect(':')?;
            if key == "schema" {
                let got = p.string()?;
                if got != METRICS_SCHEMA {
                    return Err(format!(
                        "schema mismatch: expected {METRICS_SCHEMA:?}, found {got:?}"
                    ));
                }
                saw_schema = true;
            } else if !parse_body_key(&mut p, &mut reg, &key)? {
                return Err(format!("unknown key {key:?} in metrics JSON"));
            }
            if !p.comma()? {
                break;
            }
        }
        p.expect('}')?;
        p.end()?;
        if !saw_schema {
            return Err("missing \"schema\" key".to_string());
        }
        Ok(reg)
    }

    /// Parses a `tlt-metrics/v1` JSON export.
    ///
    /// Returns `None` on malformed input or a wrong schema tag; use
    /// [`Registry::parse`] when the caller wants the diagnostic.
    pub fn from_json(text: &str) -> Option<Registry> {
        Registry::parse(text).ok()
    }

    /// Renders a human-readable summary (used by `trace_inspect --metrics`).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "metrics ({METRICS_SCHEMA}): {} counters, {} gauges, {} hists",
            self.counters.len(),
            self.gauges.len(),
            self.hists.len()
        );
        if !self.meta.is_empty() {
            let _ = writeln!(s, "  meta:");
            for (k, v) in &self.meta {
                let _ = writeln!(s, "    {k:<42} {v}");
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(s, "  counters:");
            for (k, v) in &self.counters {
                let _ = writeln!(s, "    {k:<42} {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(s, "  gauges:");
            for (k, v) in &self.gauges {
                let _ = writeln!(s, "    {k:<42} {v}");
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(
                s,
                "  hists: {:<36} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "", "count", "min", "p50", "p99", "max"
            );
            for (k, h) in &self.hists {
                let _ = writeln!(
                    s,
                    "    {k:<42} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    h.count,
                    h.min(),
                    h.quantile(50),
                    h.quantile(99),
                    h.max()
                );
            }
        }
        s
    }
}

/// Parses and renders a metrics file, with a human-friendly diagnostic on
/// failure — the `trace_inspect --metrics` entry point, factored out so it
/// is unit-testable against corrupted input.
pub fn metrics_summary(text: &str) -> Result<String, String> {
    let reg = Registry::parse(text).map_err(|e| format!("invalid tlt-metrics JSON: {e}"))?;
    Ok(reg.render())
}

/// Dispatches one top-level body key (`meta`/`counters`/`gauges`/`hists`)
/// into `reg`. `Ok(false)` means the key is not a body section; the caller
/// decides whether that is an error. Shared by the metrics and profile
/// schema parsers.
pub(crate) fn parse_body_key(
    p: &mut Parser,
    reg: &mut Registry,
    key: &str,
) -> Result<bool, String> {
    match key {
        "meta" => {
            for (k, v) in p.string_map()? {
                reg.meta.insert(k, v);
            }
        }
        "counters" => {
            for (k, v) in p.scalar_map()? {
                reg.counters.insert(k, v);
            }
        }
        "gauges" => {
            for (k, v) in p.scalar_map()? {
                reg.gauges.insert(k, v);
            }
        }
        "hists" => {
            p.expect('{')?;
            if !p.peek_close('}') {
                loop {
                    let name = p.string()?;
                    p.expect(':')?;
                    let h = p.hist().map_err(|e| format!("hist {name:?}: {e}"))?;
                    reg.hists.insert(name, h);
                    if !p.comma()? {
                        break;
                    }
                }
            }
            p.expect('}')?;
        }
        _ => return Ok(false),
    }
    Ok(true)
}

pub(crate) fn push_scalar_map(s: &mut String, map: &BTreeMap<String, u64>) {
    let mut first = true;
    for (k, v) in map {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str("\n    ");
        push_json_string(s, k);
        let _ = write!(s, ": {v}");
    }
    if !map.is_empty() {
        s.push_str("\n  ");
    }
}

pub(crate) fn push_string_map(s: &mut String, map: &BTreeMap<String, String>) {
    let mut first = true;
    for (k, v) in map {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str("\n    ");
        push_json_string(s, k);
        s.push_str(": ");
        push_json_string(s, v);
    }
    if !map.is_empty() {
        s.push_str("\n  ");
    }
}

pub(crate) fn push_json_string(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// A minimal cursor parser for the exact JSON shape `to_json` emits
/// (objects of strings/numbers plus `[[lo,count],..]` bucket arrays).
/// Every method reports failures as `Err(diagnostic)` — never a panic —
/// so truncated or corrupt files surface as clean error messages.
pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    text: &'a str,
    i: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            text,
            i: 0,
        }
    }

    fn fail<T>(&self, what: &str) -> Result<T, String> {
        let end = (self.i + 24).min(self.bytes.len());
        let near = String::from_utf8_lossy(&self.bytes[self.i..end]);
        if self.i >= self.bytes.len() {
            Err(format!(
                "{what} at byte {} (unexpected end of input)",
                self.i
            ))
        } else {
            Err(format!("{what} at byte {} (near {near:?})", self.i))
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.bytes.len() && self.bytes[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    pub(crate) fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.i) == Some(&(c as u8)) {
            self.i += 1;
            Ok(())
        } else {
            self.fail(&format!("expected {c:?}"))
        }
    }

    /// Consumes a comma if present; `Ok(false)` means the container ends.
    pub(crate) fn comma(&mut self) -> Result<bool, String> {
        self.skip_ws();
        match self.bytes.get(self.i) {
            Some(b',') => {
                self.i += 1;
                Ok(true)
            }
            Some(b'}') | Some(b']') => Ok(false),
            _ => self.fail("expected ',' or a closing bracket"),
        }
    }

    pub(crate) fn peek_close(&mut self, c: char) -> bool {
        self.skip_ws();
        self.bytes.get(self.i) == Some(&(c as u8))
    }

    /// Fails unless only whitespace remains.
    pub(crate) fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.i < self.bytes.len() {
            self.fail("trailing data after document")
        } else {
            Ok(())
        }
    }

    pub(crate) fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let start = self.i;
        while self.i < self.bytes.len() {
            match self.bytes[self.i] {
                b'\\' => self.i += 2,
                b'"' => {
                    let raw = &self.text[start..self.i];
                    self.i += 1;
                    return match unescape(raw) {
                        Some(s) => Ok(s),
                        None => self.fail("bad string escape"),
                    };
                }
                _ => self.i += 1,
            }
        }
        self.fail("unterminated string")
    }

    pub(crate) fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.bytes.len() && self.bytes[self.i].is_ascii_digit() {
            self.i += 1;
        }
        if start == self.i {
            return self.fail("expected a number");
        }
        match self.text[start..self.i].parse() {
            Ok(v) => Ok(v),
            Err(_) => self.fail("number out of range"),
        }
    }

    /// `{ "name": 1, ... }`
    pub(crate) fn scalar_map(&mut self) -> Result<Vec<(String, u64)>, String> {
        self.expect('{')?;
        let mut out = Vec::new();
        if !self.peek_close('}') {
            loop {
                let k = self.string()?;
                self.expect(':')?;
                let v = self.number()?;
                out.push((k, v));
                if !self.comma()? {
                    break;
                }
            }
        }
        self.expect('}')?;
        Ok(out)
    }

    /// `{ "name": "value", ... }`
    pub(crate) fn string_map(&mut self) -> Result<Vec<(String, String)>, String> {
        self.expect('{')?;
        let mut out = Vec::new();
        if !self.peek_close('}') {
            loop {
                let k = self.string()?;
                self.expect(':')?;
                let v = self.string()?;
                out.push((k, v));
                if !self.comma()? {
                    break;
                }
            }
        }
        self.expect('}')?;
        Ok(out)
    }

    /// `{"count":N,"sum":N,"min":N,"max":N,"buckets":[[lo,n],..]}`
    pub(crate) fn hist(&mut self) -> Result<Hist, String> {
        self.expect('{')?;
        let (mut count, mut sum, mut min, mut max) = (0, 0, 0, 0);
        let mut pairs = Vec::new();
        loop {
            let key = self.string()?;
            self.expect(':')?;
            match key.as_str() {
                "count" => count = self.number()?,
                "sum" => sum = self.number()?,
                "min" => min = self.number()?,
                "max" => max = self.number()?,
                "buckets" => {
                    self.expect('[')?;
                    if !self.peek_close(']') {
                        loop {
                            self.expect('[')?;
                            let lo = self.number()?;
                            self.expect(',')?;
                            let n = self.number()?;
                            self.expect(']')?;
                            pairs.push((lo, n));
                            if !self.comma()? {
                                break;
                            }
                        }
                    }
                    self.expect(']')?;
                }
                _ => return self.fail(&format!("unknown hist field {key:?}")),
            }
            if !self.comma()? {
                break;
            }
        }
        self.expect('}')?;
        match Hist::from_parts(count, sum, min, max, &pairs) {
            Some(h) => Ok(h),
            None => Err(
                "bucket data inconsistent with summary (bad boundary, count mismatch, or overflow)"
                    .to_string(),
            ),
        }
    }
}

fn unescape(raw: &str) -> Option<String> {
    if !raw.contains('\\') {
        return Some(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_monotone_and_self_consistent() {
        let mut prev = None;
        for idx in 0..HIST_BUCKETS {
            let lo = bucket_lo(idx);
            assert_eq!(bucket_index(lo), idx, "lo {lo} maps back to {idx}");
            if let Some(p) = prev {
                assert!(lo > p, "bucket {idx} lower bound not increasing");
            }
            prev = Some(lo);
        }
        // Values land in the bucket whose range covers them.
        for v in [0, 1, 15, 16, 17, 100, 1_000, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            assert!(bucket_lo(idx) <= v);
            if idx + 1 < HIST_BUCKETS {
                assert!(v < bucket_lo(idx + 1), "v {v} exceeds bucket {idx}");
            }
        }
    }

    #[test]
    fn hist_boundary_values_roundtrip_exactly() {
        // The exact/log-linear seam (15 -> 16) and both extremes.
        let edges = [0u64, 15, 16, u64::MAX];
        for &v in &edges {
            let idx = bucket_index(v);
            assert_eq!(bucket_index(bucket_lo(idx)), idx, "round-trip for {v}");
            assert!(bucket_lo(idx) <= v);
        }
        // Below 16 every bucket is exact: the lower bound IS the value.
        assert_eq!(bucket_lo(bucket_index(0)), 0);
        assert_eq!(bucket_lo(bucket_index(15)), 15);
        assert_eq!(bucket_lo(bucket_index(16)), 16);
        // u64::MAX falls in the very last bucket.
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);

        let mut h = Hist::default();
        for &v in &edges {
            h.observe(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        // Sum saturates instead of wrapping.
        assert_eq!(h.sum, u64::MAX);
        // Quantiles are monotone in pct across the edge samples.
        let mut prev = 0;
        for pct in 0..=100u64 {
            let q = h.quantile(pct);
            assert!(q >= prev, "quantile({pct}) = {q} < {prev}");
            prev = q;
        }
        assert_eq!(h.quantile(0), 0);
        assert_eq!(h.quantile(100), bucket_lo(HIST_BUCKETS - 1));
    }

    /// Midpoint estimator vs a known uniform distribution: every
    /// percentile lands within the documented ±12.5% bucket error.
    #[test]
    fn quantile_permille_tracks_uniform_distribution() {
        let mut h = Hist::default();
        for v in 1..=100_000u64 {
            h.observe(v);
        }
        for (q, truth) in [
            (100u64, 10_000u64),
            (500, 50_000),
            (900, 90_000),
            (990, 99_000),
            (999, 99_900),
        ] {
            let est = h.quantile_permille(q);
            let err = est.abs_diff(truth) as f64 / truth as f64;
            assert!(err <= 0.125, "q={q}: est {est} vs {truth} ({err:.3})");
        }
        assert_eq!(h.quantile_permille(0), 1, "clamped to observed min");
        assert_eq!(h.quantile_permille(1000), 100_000, "p100 is the max");
    }

    /// p999 separates from p99 on a heavy-tailed set — the reason the
    /// serve SLO table needs per-mille resolution at all.
    #[test]
    fn quantile_permille_resolves_the_p999_tail() {
        let mut h = Hist::default();
        for _ in 0..995 {
            h.observe(100);
        }
        for _ in 0..5 {
            h.observe(1_000_000);
        }
        let p990 = h.quantile_permille(990);
        let p999 = h.quantile_permille(999);
        assert!(p990 <= 125, "body estimate {p990}");
        assert!(p999 >= 875_000, "tail estimate {p999}");
        // The legacy percent-resolution API cannot express the difference.
        assert_eq!(h.quantile(99), h.quantile(99));
    }

    /// Values below 16 are exact buckets: the midpoint estimator returns
    /// the sample values themselves, and the estimate is mergeable — a
    /// split-then-merge histogram answers exactly like the whole.
    #[test]
    fn quantile_permille_exact_small_values_and_mergeable() {
        let mut h = Hist::default();
        for v in [2u64, 4, 4, 9] {
            h.observe(v);
        }
        assert_eq!(h.quantile_permille(0), 2);
        assert_eq!(h.quantile_permille(500), 4);
        assert_eq!(h.quantile_permille(1000), 9);

        let mut rng = eventsim::SimRng::seed_from(0x51_0E);
        let mut whole = Hist::default();
        let mut left = Hist::default();
        let mut right = Hist::default();
        for i in 0..10_000 {
            let v = rng.gen_range_u64(1..5_000_000);
            whole.observe(v);
            if i % 2 == 0 {
                left.observe(v);
            } else {
                right.observe(v);
            }
        }
        left.merge(&right);
        for q in [0u64, 10, 250, 500, 900, 990, 999, 1000] {
            assert_eq!(left.quantile_permille(q), whole.quantile_permille(q));
        }
        // Monotone in q.
        let mut prev = 0;
        for q in (0..=1000u64).step_by(25) {
            let est = whole.quantile_permille(q);
            assert!(est >= prev, "quantile_permille({q}) regressed");
            prev = est;
        }
        // Empty histogram reports 0, like the other accessors.
        assert_eq!(Hist::default().quantile_permille(999), 0);
    }

    #[test]
    fn hist_boundary_merge_matches_observe_all() {
        let edges = [0u64, 15, 16, u64::MAX];
        let mut all = Hist::default();
        for &v in &edges {
            all.observe(v);
        }
        let mut a = Hist::default();
        let mut b = Hist::default();
        a.observe(0);
        a.observe(16);
        b.observe(15);
        b.observe(u64::MAX);
        a.merge(&b);
        assert_eq!(a, all);
        for pct in [0u64, 25, 50, 75, 90, 99, 100] {
            assert_eq!(a.quantile(pct), all.quantile(pct), "pct {pct}");
        }
        // And the merged histogram survives a JSON round-trip.
        let mut r = Registry::new();
        r.hists.insert("edges".to_string(), a);
        let back = Registry::from_json(&r.to_json()).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn hist_summary_stats() {
        let mut h = Hist::default();
        assert_eq!((h.min(), h.max(), h.mean(), h.quantile(99)), (0, 0, 0, 0));
        for v in [2u64, 4, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.min(), 2);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 252);
        assert_eq!(h.quantile(0), 2);
        assert_eq!(h.quantile(50), 4);
        // p100 falls in the bucket containing 1000 (lower bound <= 1000).
        assert!(h.quantile(100) <= 1000);
        assert!(h.quantile(100) > 4);
    }

    #[test]
    fn merge_matches_sequential_observation() {
        let mut all = Hist::default();
        let mut a = Hist::default();
        let mut b = Hist::default();
        for v in 0..100u64 {
            all.observe(v * 37);
            if v % 2 == 0 {
                a.observe(v * 37);
            } else {
                b.observe(v * 37);
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn registry_counters_gauges_hists() {
        let mut r = Registry::new();
        assert!(r.is_empty());
        r.inc("pkts", 2);
        r.inc("pkts", 3);
        r.gauge_max("peak", 10);
        r.gauge_max("peak", 4);
        r.observe("lat", 100);
        assert_eq!(r.counter("pkts"), 5);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge("peak"), 10);
        assert_eq!(r.hist("lat").unwrap().count, 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn registry_merge_is_sum_max_and_bucket_merge() {
        let mut a = Registry::new();
        a.inc("c", 1);
        a.gauge_max("g", 5);
        a.observe("h", 7);
        let mut b = Registry::new();
        b.inc("c", 2);
        b.inc("only_b", 9);
        b.gauge_max("g", 3);
        b.observe("h", 100);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("only_b"), 9);
        assert_eq!(a.gauge("g"), 5);
        assert_eq!(a.hist("h").unwrap().count, 2);
        assert_eq!(a.hist("h").unwrap().max(), 100);
    }

    #[test]
    fn json_roundtrips_and_is_stable() {
        let mut r = Registry::new();
        r.inc("rto_cause_color", 2);
        r.inc("data_pkts", 1000);
        r.gauge_max("port_queue_max/n0/p1", 48_000);
        for v in [10u64, 20, 20, 5000] {
            r.observe("pfc_pause_ns/n0/p1", v);
        }
        let json = r.to_json();
        let back = Registry::from_json(&json).expect("parses");
        assert_eq!(back, r);
        // Byte-stable: re-serializing the parsed registry is identical.
        assert_eq!(back.to_json(), json);
        // Sanity on the wire shape.
        assert!(json.contains("\"schema\": \"tlt-metrics/v1\""), "{json}");
        assert!(json.contains("\"rto_cause_color\": 2"), "{json}");
        // No meta was stamped, so the section is omitted entirely.
        assert!(!json.contains("\"meta\""), "{json}");
    }

    #[test]
    fn meta_roundtrips_and_merges_first_wins() {
        let mut r = Registry::new();
        r.set_meta("scale", "quick");
        r.set_meta("jobs", "any");
        r.inc("c", 1);
        let json = r.to_json();
        assert!(json.contains("\"meta\""), "{json}");
        assert!(json.contains("\"scale\": \"quick\""), "{json}");
        let back = Registry::from_json(&json).expect("parses");
        assert_eq!(back, r);
        assert_eq!(back.to_json(), json);
        assert_eq!(back.meta_get("jobs"), Some("any"));
        // Merge keeps the receiving side's provenance.
        let mut other = Registry::new();
        other.set_meta("scale", "full");
        other.set_meta("cores", "8");
        let mut merged = r.clone();
        merged.merge(&other);
        assert_eq!(merged.meta_get("scale"), Some("quick"));
        assert_eq!(merged.meta_get("cores"), Some("8"));
        // Meta shows up in CSV and render too.
        assert!(merged.to_csv().contains("meta,scale,value,quick"));
        assert!(merged.render().contains("meta"));
    }

    #[test]
    fn malformed_json_is_rejected() {
        for bad in [
            "",
            "{",
            "not json",
            r#"{"schema": "other/v9", "counters": {}, "gauges": {}, "hists": {}}"#,
            r#"{"counters": {"a": 1}}"#, // no schema
            r#"{"schema": "tlt-metrics/v1", "hists": {"h": {"count":2,"sum":0,"min":0,"max":0,"buckets":[[0,1]]}}}"#, // bucket total != count
            r#"{"schema": "tlt-metrics/v1", "hists": {"h": {"count":1,"sum":17,"min":17,"max":17,"buckets":[[17,1]]}}}"#, // 17 is not a bucket boundary
        ] {
            assert!(Registry::from_json(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_diagnoses_truncated_and_corrupt_input_without_panicking() {
        let mut r = Registry::new();
        r.set_meta("scale", "quick");
        r.inc("data_pkts", 41);
        r.observe("lat", 100);
        let json = r.to_json();
        // Truncation at every prefix length must fail cleanly, never panic.
        for cut in 0..json.len() - 1 {
            if !json.is_char_boundary(cut) {
                continue;
            }
            let err = Registry::parse(&json[..cut]);
            assert!(err.is_err(), "accepted truncation at {cut}");
        }
        // Diagnostics carry a position and a reason.
        let err = Registry::parse(&json[..json.len() / 2]).unwrap_err();
        assert!(err.contains("byte"), "no position in {err:?}");
        let err = Registry::parse("{\"schema\": \"other/v9\"}").unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
        let err = Registry::parse("{\"schema\": \"tlt-metrics/v1\", \"bogus\": {}}").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
        // Bucket-count overflow is an error, not a debug-mode panic.
        let overflow = format!(
            "{{\"schema\": \"tlt-metrics/v1\", \"hists\": {{\"h\": {{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[[0,{m}],[1,{m}]]}}}}}}",
            m = u64::MAX
        );
        let err = Registry::parse(&overflow).unwrap_err();
        assert!(err.contains("hist"), "{err}");
        // Trailing garbage after the document is rejected.
        let trailing = format!("{json}garbage");
        assert!(Registry::parse(&trailing).is_err());
        // metrics_summary forwards the diagnostic.
        let err = metrics_summary("not json").unwrap_err();
        assert!(err.contains("invalid tlt-metrics JSON"), "{err}");
        assert!(metrics_summary(&json).unwrap().contains("data_pkts"));
    }

    #[test]
    fn csv_lists_every_metric() {
        let mut r = Registry::new();
        r.inc("c", 1);
        r.gauge_max("g", 2);
        r.observe("h", 3);
        let csv = r.to_csv();
        assert!(csv.starts_with("kind,name,field,value\n"));
        assert!(csv.contains("counter,c,value,1"));
        assert!(csv.contains("gauge,g,value,2"));
        assert!(csv.contains("hist,h,count,1"));
        assert!(csv.contains("hist,h,p99,3"));
    }

    #[test]
    fn render_mentions_each_section() {
        let mut r = Registry::new();
        r.inc("c", 1);
        r.gauge_max("g", 2);
        r.observe("h", 3);
        let text = r.render();
        assert!(text.contains("counters"));
        assert!(text.contains("gauges"));
        assert!(text.contains("hists"));
        assert!(text.contains("h "), "{text}");
    }
}
