//! Micro-benchmarks of the hot paths: event queue, switch MMU, SACK
//! machinery, and a small end-to-end engine run.
//!
//! Hand-rolled on `std::time::Instant` so the workspace builds offline
//! (no criterion), and gated behind the non-default `microbench` feature so
//! the tier-1 cycle never compiles bench-only code:
//!
//! ```text
//! cargo bench -p bench --features microbench
//! ```

fn main() {
    #[cfg(feature = "microbench")]
    micro::run();
    #[cfg(not(feature = "microbench"))]
    eprintln!("micro-benchmarks are feature-gated; rerun with --features microbench");
}

#[cfg(feature = "microbench")]
mod micro {
    use std::hint::black_box;
    use std::time::Instant;

    use dcsim::{small_single_switch, Engine, FlowSpec, SimConfig};
    use eventsim::{EventQueue, SimTime};
    use netsim::packet::{FlowId, Packet, PacketSlab};
    use netsim::switch::{Switch, SwitchConfig};
    use netsim::topology::PortId;
    use transport::buffer::{RecvBuffer, Scoreboard};
    use transport::TransportKind;

    /// Times `f` over enough iterations to fill ~0.5 s after a warmup and
    /// prints mean per-iteration latency.
    fn bench(name: &str, mut f: impl FnMut() -> u64) {
        // Warmup + calibration.
        let t0 = Instant::now();
        let mut sink = 0u64;
        let mut calib = 0u32;
        while t0.elapsed().as_millis() < 100 {
            sink = sink.wrapping_add(f());
            calib += 1;
        }
        let iters = (calib * 5).max(10);
        let t1 = Instant::now();
        for _ in 0..iters {
            sink = sink.wrapping_add(f());
        }
        let per = t1.elapsed().as_secs_f64() / f64::from(iters);
        black_box(sink);
        println!("{name:<40} {:>12.3} µs/iter  ({iters} iters)", per * 1e6);
    }

    pub fn run() {
        bench("event_queue/schedule_pop_10k", || {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_ns((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            sum
        });

        bench("switch/enqueue_dequeue_4k", || {
            let mut cfg = SwitchConfig::trident2(12);
            cfg.color_threshold = Some(400_000);
            let mut sw = Switch::new(cfg, 1);
            let mut slab = PacketSlab::new();
            for i in 0..4_000u64 {
                let mut p = Packet::data(FlowId(0), i * 1000, 1000);
                p.colorize(true);
                let p = slab.insert(p);
                sw.enqueue(
                    p,
                    &mut slab,
                    PortId(0),
                    PortId((i % 12) as u32),
                    SimTime::ZERO,
                );
                if i % 2 == 0 {
                    let (r, _) = sw.dequeue(&mut slab, PortId((i % 12) as u32), SimTime::ZERO);
                    if let Some(r) = r {
                        slab.take(r);
                    }
                }
            }
            sw.total_bytes()
        });

        bench("sack/reassembly_1k_segments", || {
            let mut rb = RecvBuffer::new(1_000_000);
            // Worst-ish case: alternating halves create many ranges.
            for i in (0..1000u64).step_by(2) {
                rb.insert(i * 1000, (i + 1) * 1000);
            }
            for i in (1..1000u64).step_by(2) {
                rb.insert(i * 1000, (i + 1) * 1000);
            }
            u64::from(rb.is_complete())
        });

        bench("sack/scoreboard_holes", || {
            let mut sb = Scoreboard::new();
            for i in 0..500u64 {
                sb.add_block(netsim::packet::SackBlock {
                    start: i * 2000 + 1000,
                    end: i * 2000 + 2000,
                });
            }
            let mut holes = 0;
            let mut from = 0;
            while let Some((hs, he)) = sb.first_hole(from) {
                holes += 1;
                from = he.max(hs + 1);
            }
            holes
        });

        bench("engine/8way_incast_dctcp", || {
            let cfg =
                SimConfig::tcp_family(TransportKind::Dctcp).with_topology(small_single_switch(9));
            let flows: Vec<FlowSpec> = (1..9)
                .map(|s| FlowSpec::new(s, 0, 32_000, SimTime::ZERO, true))
                .collect();
            let res = Engine::new(cfg, flows).run();
            res.agg.data_pkts_sent
        });

        bench("engine/8way_incast_dctcp_tlt", || {
            let cfg = SimConfig::tcp_family(TransportKind::Dctcp)
                .with_topology(small_single_switch(9))
                .with_tlt();
            let flows: Vec<FlowSpec> = (1..9)
                .map(|s| FlowSpec::new(s, 0, 32_000, SimTime::ZERO, true))
                .collect();
            let res = Engine::new(cfg, flows).run();
            res.agg.data_pkts_sent
        });
    }
}
