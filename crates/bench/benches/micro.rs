//! Criterion micro-benchmarks of the hot paths: event queue, switch MMU,
//! SACK machinery, and a small end-to-end engine run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dcsim::{small_single_switch, Engine, FlowSpec, SimConfig};
use eventsim::{EventQueue, SimTime};
use netsim::packet::{FlowId, Packet};
use netsim::switch::{Switch, SwitchConfig};
use netsim::topology::PortId;
use transport::buffer::{RecvBuffer, Scoreboard};
use transport::TransportKind;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_ns((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            black_box(sum)
        })
    });
}

fn bench_switch(c: &mut Criterion) {
    c.bench_function("switch/enqueue_dequeue_4k", |b| {
        b.iter(|| {
            let mut cfg = SwitchConfig::trident2(12);
            cfg.color_threshold = Some(400_000);
            let mut sw = Switch::new(cfg, 1);
            for i in 0..4_000u64 {
                let mut p = Packet::data(FlowId(0), i * 1000, 1000);
                p.colorize(true);
                sw.enqueue(p, PortId(0), PortId((i % 12) as u32), SimTime::ZERO);
                if i % 2 == 0 {
                    sw.dequeue(PortId((i % 12) as u32), SimTime::ZERO);
                }
            }
            black_box(sw.total_bytes())
        })
    });
}

fn bench_sack(c: &mut Criterion) {
    c.bench_function("sack/reassembly_1k_segments", |b| {
        b.iter(|| {
            let mut rb = RecvBuffer::new(1_000_000);
            // Worst-ish case: alternating halves create many ranges.
            for i in (0..1000u64).step_by(2) {
                rb.insert(i * 1000, (i + 1) * 1000);
            }
            for i in (1..1000u64).step_by(2) {
                rb.insert(i * 1000, (i + 1) * 1000);
            }
            black_box(rb.is_complete())
        })
    });
    c.bench_function("sack/scoreboard_holes", |b| {
        b.iter(|| {
            let mut sb = Scoreboard::new();
            for i in 0..500u64 {
                sb.add_block(netsim::packet::SackBlock {
                    start: i * 2000 + 1000,
                    end: i * 2000 + 2000,
                });
            }
            let mut holes = 0;
            let mut from = 0;
            while let Some((hs, he)) = sb.first_hole(from) {
                holes += 1;
                from = he.max(hs + 1);
            }
            black_box(holes)
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine/8way_incast_dctcp", |b| {
        b.iter(|| {
            let cfg = SimConfig::tcp_family(TransportKind::Dctcp)
                .with_topology(small_single_switch(9));
            let flows: Vec<FlowSpec> = (1..9)
                .map(|s| FlowSpec::new(s, 0, 32_000, SimTime::ZERO, true))
                .collect();
            let res = Engine::new(cfg, flows).run();
            black_box(res.agg.data_pkts_sent)
        })
    });
    c.bench_function("engine/8way_incast_dctcp_tlt", |b| {
        b.iter(|| {
            let cfg = SimConfig::tcp_family(TransportKind::Dctcp)
                .with_topology(small_single_switch(9))
                .with_tlt();
            let flows: Vec<FlowSpec> = (1..9)
                .map(|s| FlowSpec::new(s, 0, 32_000, SimTime::ZERO, true))
                .collect();
            let res = Engine::new(cfg, flows).run();
            black_box(res.agg.data_pkts_sent)
        })
    });
}

criterion_group!(benches, bench_event_queue, bench_switch, bench_sack, bench_engine);
criterion_main!(benches);
