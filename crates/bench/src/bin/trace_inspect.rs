//! Flight-recorder trace inspector.
//!
//! Reads a JSONL trace produced by any experiment binary's `--trace` flag,
//! summarizes every `run_start`/`run_end` bracket — per-switch drop-reason
//! tables, PFC pause timeline, event counts — and cross-checks the counted
//! events against the totals the producer declared in `run_end`.
//!
//! Exit status: 0 when every run is internally consistent, 1 when any run's
//! counted events disagree with its declared totals (or the file contains
//! malformed/orphaned lines), 2 on usage or I/O errors.

use std::fs::File;
use std::io::BufReader;

use telemetry::inspect::inspect_reader;

fn main() {
    let mut paths: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--help" | "-h" => {
                eprintln!("usage: trace_inspect <trace.jsonl>...");
                std::process::exit(0);
            }
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag {other}");
                eprintln!("usage: trace_inspect <trace.jsonl>...");
                std::process::exit(2);
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: trace_inspect <trace.jsonl>...");
        std::process::exit(2);
    }

    let mut clean = true;
    for path in &paths {
        let file = File::open(path).unwrap_or_else(|e| {
            eprintln!("error: cannot open {path}: {e}");
            std::process::exit(2);
        });
        let report = inspect_reader(BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        });
        if paths.len() > 1 {
            println!("### {path}");
        }
        print!("{}", report.render());
        clean &= report.is_clean();
    }
    std::process::exit(if clean { 0 } else { 1 });
}
