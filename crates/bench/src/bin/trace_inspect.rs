//! Flight-recorder trace inspector.
//!
//! Reads a JSONL trace produced by any experiment binary's `--trace` flag,
//! summarizes every `run_start`/`run_end` bracket — per-switch drop-reason
//! tables, RTO root-cause attribution, PFC pause timeline, event counts —
//! and cross-checks the counted events against the totals the producer
//! declared in `run_end`.
//!
//! `--metrics <file>` additionally (or instead) renders a metrics-registry
//! export produced by the experiment binaries' `--metrics` flag, and
//! `--serve <file>` a `tlt-serve/v1` SLO report produced by `serve_grid
//! --serve-out`: the per-scheme p50/p99/p999 request-latency table plus the
//! timeout-violation cause breakdown. `--spans <file>` renders a
//! `tlt-spans/v1` latency-ledger export produced by `serve_grid
//! --spans-out`: the per-scheme phase × percentile table, the worst-request
//! span trees, and the SLO-violation dominant-phase breakdown.
//!
//! Exit status: 0 when every run is internally consistent, 1 when any run's
//! counted events disagree with its declared totals (or the file contains
//! malformed/orphaned lines), 2 on usage or I/O errors — including a
//! malformed `--metrics`/`--serve`/`--spans` file, whose positional parse
//! diagnostic is forwarded.

use std::fs::File;
use std::io::BufReader;

use telemetry::inspect::inspect_reader;
use telemetry::{metrics_summary, serve_summary, spans_summary};

const USAGE: &str = "usage: trace_inspect [--metrics metrics.json] [--serve serve.json] \
     [--spans spans.json] <trace.jsonl>...";

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut metrics: Vec<String> = Vec::new();
    let mut serve: Vec<String> = Vec::new();
    let mut spans: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            "--metrics" => {
                let Some(path) = args.next() else {
                    eprintln!("error: --metrics needs a file argument");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                };
                metrics.push(path);
            }
            "--serve" => {
                let Some(path) = args.next() else {
                    eprintln!("error: --serve needs a file argument");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                };
                serve.push(path);
            }
            "--spans" => {
                let Some(path) = args.next() else {
                    eprintln!("error: --spans needs a file argument");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                };
                spans.push(path);
            }
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag {other}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() && metrics.is_empty() && serve.is_empty() && spans.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    let mut clean = true;
    for path in &paths {
        let file = File::open(path).unwrap_or_else(|e| {
            eprintln!("error: cannot open {path}: {e}");
            std::process::exit(2);
        });
        let report = inspect_reader(BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        });
        if paths.len() > 1 {
            println!("### {path}");
        }
        print!("{}", report.render());
        clean &= report.is_clean();
    }
    for path in &metrics {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot open {path}: {e}");
            std::process::exit(2);
        });
        let summary = metrics_summary(&text).unwrap_or_else(|e| {
            eprintln!("error: cannot parse {path}: {e}");
            std::process::exit(2);
        });
        println!("### metrics {path}");
        print!("{summary}");
    }
    for path in &serve {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot open {path}: {e}");
            std::process::exit(2);
        });
        let summary = serve_summary(&text).unwrap_or_else(|e| {
            eprintln!("error: cannot parse {path}: {e}");
            std::process::exit(2);
        });
        println!("### serve {path}");
        print!("{summary}");
    }
    for path in &spans {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot open {path}: {e}");
            std::process::exit(2);
        });
        let summary = spans_summary(&text).unwrap_or_else(|e| {
            eprintln!("error: cannot parse {path}: {e}");
            std::process::exit(2);
        });
        println!("### spans {path}");
        print!("{summary}");
    }
    std::process::exit(if clean { 0 } else { 1 });
}
