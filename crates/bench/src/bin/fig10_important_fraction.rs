//! Figure 10: fraction of packets marked important vs foreground share.
//!
//! DCTCP + TLT, foreground incast ratio swept 0–20% of volume. The paper:
//! only ~3.3% of packets are important with no foreground traffic, rising
//! with the incast share (short flows mark a higher fraction, and
//! congestion shrinks windows).

use bench::plan::RunPlan;
use bench::runner::{self, Args, TcpVariant};
use transport::TransportKind;
use workload::{standard_mix, FlowSizeCdf};

const FG_SHARES: [f64; 5] = [0.0, 0.05, 0.10, 0.15, 0.20];

fn main() {
    let args = Args::parse();
    let cdf = FlowSizeCdf::web_search();
    let cdf = &cdf;

    let mut plan = RunPlan::new(&args);
    for fg_pct in FG_SHARES {
        let mut p = args.mix();
        p.fg_fraction = fg_pct;
        plan.scheme(
            format!("fg={:.0}%", fg_pct * 100.0),
            move |_s| runner::tcp_cfg(&p, TransportKind::Dctcp, TcpVariant::Tlt, false),
            move |s| {
                let mut mp = p;
                mp.seed = s;
                standard_mix(cdf, mp)
            },
        );
    }
    let results = plan.run();

    let mut rows = Vec::new();
    runner::print_header(
        "Figure 10: important-packet fraction vs fg share (DCTCP+TLT)",
        &["important frac", "fg p99.9 (ms)"],
    );
    for (fg_pct, r) in FG_SHARES.iter().zip(&results) {
        runner::print_row(&r.name, &[&r.important_frac, &r.fg_p999_ms]);
        rows.push(vec![
            format!("{fg_pct:.2}"),
            format!("{:.4}", r.important_frac.mean()),
            format!("{:.4}", r.fg_p999_ms.mean()),
        ]);
    }
    runner::maybe_csv(
        &args,
        &["fg_fraction", "important_frac", "fg_p999_ms"],
        &rows,
    );
}
