//! Figure 16: CDF of segment delivery time (DCTCP vs DCTCP+TLT).
//!
//! Delivery time = first transmission of a segment until its cumulative
//! acknowledgement, including all retransmissions. The paper: TLT cuts the
//! 99%-ile by 22.8% and the 99.9%-ile by 57.6% — loss *recovery* is timely,
//! not just loss detection.

use bench::runner::{self, Args, TcpVariant};

use transport::TransportKind;
use workload::{standard_mix, FlowSizeCdf};

fn main() {
    let args = Args::parse();
    let cdf = FlowSizeCdf::web_search();
    let mut rows = Vec::new();

    println!("== Figure 16: segment delivery time CDF (DCTCP) ==");
    for tlt in [false, true] {
        let mut all = netstats::Samples::new();
        for seed in 1..=args.seeds {
            let mut p = args.mix();
            p.seed = seed;
            let v = if tlt {
                TcpVariant::Tlt
            } else {
                TcpVariant::Baseline
            };
            let mut cfg = runner::tcp_cfg(&p, TransportKind::Dctcp, v, false).with_seed(seed);
            cfg.collect_delivery = true;
            let label = if tlt {
                "fig16/dctcp+tlt"
            } else {
                "fig16/dctcp"
            };
            let res = runner::traced_run(label, cfg, standard_mix(&cdf, p));
            let mut d = res.agg.delivery.clone();
            for (val, _) in d.cdf(2000) {
                all.push(val);
            }
        }
        let name = if tlt { "DCTCP+TLT" } else { "DCTCP" };
        println!(
            "{name:>12}: p50={:9.1}us p99={:9.1}us p99.9={:9.1}us max={:9.1}us (n={})",
            all.percentile(50.0).unwrap_or(0.0) * 1e6,
            all.percentile(99.0).unwrap_or(0.0) * 1e6,
            all.percentile(99.9).unwrap_or(0.0) * 1e6,
            all.max() * 1e6,
            all.len()
        );
        for (v, q) in all.cdf(40) {
            rows.push(vec![
                name.to_string(),
                format!("{:.2}", v * 1e6),
                format!("{q:.4}"),
            ]);
        }
    }
    runner::maybe_csv(&args, &["scheme", "delivery_us", "quantile"], &rows);
}
