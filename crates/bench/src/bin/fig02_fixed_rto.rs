//! Figure 2: a fixed 160 μs RTO vs the 4 ms RTO_min baseline.
//!
//! DCTCP, foreground = 15% of volume. The paper: the fixed RTO improves fg
//! p99 FCT by ~41% but costs +113% bg average FCT, 31% bg goodput, and a
//! 51× increase in timeouts — aggressive static timeouts are harmful.

use bench::plan::RunPlan;
use bench::runner::{self, Args, TcpVariant};
use eventsim::SimTime;
use transport::{RtoMode, TransportKind};
use workload::{standard_mix, FlowSizeCdf};

fn main() {
    let args = Args::parse();
    let cdf = FlowSizeCdf::web_search();
    let cdf = &cdf;
    let mut p = args.mix();
    p.fg_fraction = 0.15;

    let mut plan = RunPlan::new(&args);
    for (name, rto) in [
        ("baseline 4ms RTOmin", RtoMode::linux_default()),
        ("fixed 160us RTO", RtoMode::Fixed(SimTime::from_us(160))),
    ] {
        plan.scheme(
            name,
            move |_s| {
                let mut cfg =
                    runner::tcp_cfg(&p, TransportKind::Dctcp, TcpVariant::Baseline, false);
                cfg.rto = rto;
                cfg
            },
            move |s| {
                let mut mp = p;
                mp.seed = s;
                standard_mix(cdf, mp)
            },
        );
    }
    let results = plan.run();

    let mut rows = Vec::new();
    runner::print_header(
        "Figure 2: fixed 160us RTO vs 4ms RTO_min (DCTCP, fg=15%)",
        &["fg p99 (ms)", "bg avg (ms)", "bg gbps", "TO/1k"],
    );
    for r in &results {
        runner::print_row(
            &r.name,
            &[
                &r.fg_p99_ms,
                &r.bg_avg_ms,
                &r.bg_goodput_gbps,
                &r.timeouts_per_1k,
            ],
        );
        rows.push(vec![
            r.name.clone(),
            format!("{:.4}", r.fg_p99_ms.mean()),
            format!("{:.4}", r.bg_avg_ms.mean()),
            format!("{:.4}", r.bg_goodput_gbps.mean()),
            format!("{:.3}", r.timeouts_per_1k.mean()),
        ]);
    }
    runner::maybe_csv(
        &args,
        &[
            "scheme",
            "fg_p99_ms",
            "bg_avg_ms",
            "bg_goodput_gbps",
            "timeouts_per_1k",
        ],
        &rows,
    );
}
