//! Figure 17: the adaptive important ACK-clocking ablation.
//!
//! DCTCP + TLT + PFC with three clocking policies: always 1 byte, adaptive
//! (the paper's design), always 1 MTU. The paper: 1 MTU recovers fastest
//! but sends ~6.9× more clocking bytes and triggers 1.25× more PAUSE
//! frames; 1 byte is cheap but recovery is ~55× slower at the tail;
//! adaptive gets 1-MTU-like recovery at 1-byte-like overhead.

use bench::plan::RunPlan;
use bench::runner::{self, Args, TcpVariant};
use tlt_core::ClockingPolicy;
use transport::TransportKind;
use workload::{standard_mix, FlowSizeCdf};

fn main() {
    let args = Args::parse();
    let cdf = FlowSizeCdf::web_search();
    let cdf = &cdf;
    let p = args.mix();

    let mut plan = RunPlan::new(&args);
    for (name, policy) in [
        ("1-Byte", ClockingPolicy::AlwaysOneByte),
        ("adaptive (TLT)", ClockingPolicy::Adaptive),
        ("1-MTU", ClockingPolicy::AlwaysMss),
    ] {
        plan.scheme(
            name,
            move |_s| {
                let mut cfg = runner::tcp_cfg(&p, TransportKind::Dctcp, TcpVariant::Tlt, true);
                if let Some(t) = &mut cfg.tlt {
                    t.clocking = policy;
                }
                cfg
            },
            move |s| {
                let mut mp = p;
                mp.seed = s;
                standard_mix(cdf, mp)
            },
        );
    }
    let results = plan.run();

    let mut rows = Vec::new();
    runner::print_header(
        "Figure 17: ACK-clocking policy ablation (DCTCP+TLT+PFC)",
        &["fg p99.9 (ms)", "clock kB", "PAUSE/1k"],
    );
    for r in &results {
        runner::print_row(&r.name, &[&r.fg_p999_ms, &r.clocking_kb, &r.pause_per_1k]);
        rows.push(vec![
            r.name.clone(),
            format!("{:.4}", r.fg_p999_ms.mean()),
            format!("{:.2}", r.clocking_kb.mean()),
            format!("{:.3}", r.pause_per_1k.mean()),
        ]);
    }
    runner::maybe_csv(
        &args,
        &["policy", "fg_p999_ms", "clocking_kb", "pause_per_1k"],
        &rows,
    );
}
