//! Figure 14: the incast microbenchmark.
//!
//! A client pulls 32 kB from each of up to 200 connections spread over 8
//! servers; all responses start synchronized. Panels (a)/(b): 99% FCT vs
//! fan-out for TCP / DCTCP with 4 ms RTO_min, 200 μs RTO_min, and TLT.
//! Panel (c): the FCT CDF at 100 flows. The paper: both baselines hit the
//! timeout cliff; TLT absorbs ≥4× higher fan-in with no timeouts at all
//! and cuts p99 FCT by up to 97.2%.

use bench::plan::RunPlan;
use bench::runner::{self, Args, TcpVariant};
use dcsim::{small_single_switch, SimConfig};
use netstats::Samples;
use transport::TransportKind;
use workload::incast_burst;

const VARIANTS: [TcpVariant; 3] = [TcpVariant::Baseline, TcpVariant::Us200, TcpVariant::Tlt];

fn cfg(kind: TransportKind, v: TcpVariant) -> SimConfig {
    let p = workload::MixParams::reduced(1);
    runner::tcp_cfg(&p, kind, v, false).with_topology(small_single_switch(9))
}

fn main() {
    let args = Args::parse();
    let counts: Vec<usize> = if args.quick {
        vec![40, 120]
    } else {
        vec![20, 40, 60, 80, 100, 120, 160, 200]
    };

    let mut plan = RunPlan::new(&args);
    for kind in [TransportKind::Tcp, TransportKind::Dctcp] {
        for &n in &counts {
            for v in VARIANTS {
                plan.scheme(
                    "",
                    move |_s| cfg(kind, v),
                    move |s| incast_burst(n, 8, 32_000, s),
                );
            }
        }
    }
    let mut results = plan.run().into_iter();

    let mut rows = Vec::new();
    for kind in [TransportKind::Tcp, TransportKind::Dctcp] {
        runner::print_header(
            &format!("Figure 14: 99% FCT (ms) vs #flows, {}", kind.name()),
            &["4ms", "200us", "TLT"],
        );
        for &n in &counts {
            let mut line = format!("{n:<28}");
            let mut row = vec![kind.name().to_string(), n.to_string()];
            for _ in VARIANTS {
                let r = results.next().expect("one result per scheme");
                line.push_str(&format!(
                    "{:>10.3}±{:<5.3}",
                    r.fg_p99_ms.mean(),
                    r.fg_p99_ms.std()
                ));
                row.push(format!("{:.4}", r.fg_p99_ms.mean()));
            }
            println!("{line}");
            rows.push(row);
        }
    }

    // Panel (c): CDF of FCT at 100 flows, TCP. Bespoke per-flow data, so it
    // stays on the sequential traced-run path.
    println!("\n== Figure 14c: FCT CDF at 100 flows (TCP) ==");
    for v in VARIANTS {
        let mut fcts = Samples::new();
        for seed in 1..=args.seeds {
            let res = runner::traced_run(
                &format!("fig14c/{}", v.label()),
                cfg(TransportKind::Tcp, v).with_seed(seed),
                incast_burst(100, 8, 32_000, seed),
            );
            for f in &res.flows {
                if let Some(fct) = f.fct() {
                    fcts.push(fct.as_secs_f64() * 1e3);
                }
            }
        }
        println!(
            "{:>8}: p50={:8.3}ms p90={:8.3}ms p99={:8.3}ms max={:8.3}ms",
            v.label(),
            fcts.percentile(50.0).unwrap_or(0.0),
            fcts.percentile(90.0).unwrap_or(0.0),
            fcts.percentile(99.0).unwrap_or(0.0),
            fcts.max()
        );
    }
    runner::maybe_csv(
        &args,
        &["transport", "flows", "p99_4ms", "p99_200us", "p99_tlt"],
        &rows,
    );
}
