//! Figure 12: Redis SET incast — 99%-ile response time vs request count.
//!
//! Emulates the §7.3 testbed: an HTTP client fans requests over 8 web
//! servers; each request triggers a 32 kB SET into one cache node over a
//! persistent connection, so the cache link sees an incast of up to 180
//! flows. The paper: (DC)TCP response times blow up (timeouts) with high
//! variance as the fan-in grows; with TLT they stay steady (~0.2–4.4 ms),
//! up to 91.7% (TCP) / 91.5% (DCTCP) lower at the max.

use bench::plan::RunPlan;
use bench::runner::{self, Args, TcpVariant};
use dcsim::{small_single_switch, SimConfig};
use transport::TransportKind;
use workload::cache_requests;

const SCHEMES: [(TransportKind, bool); 4] = [
    (TransportKind::Tcp, false),
    (TransportKind::Tcp, true),
    (TransportKind::Dctcp, false),
    (TransportKind::Dctcp, true),
];

fn cfg(kind: TransportKind, tlt: bool) -> SimConfig {
    let v = if tlt {
        TcpVariant::Tlt
    } else {
        TcpVariant::Baseline
    };
    let p = workload::MixParams::reduced(1); // only for link params
    runner::tcp_cfg(&p, kind, v, false).with_topology(small_single_switch(9))
}

fn main() {
    let args = Args::parse();
    let counts: Vec<usize> = if args.quick {
        vec![60, 180]
    } else {
        vec![20, 60, 100, 140, 180]
    };

    let mut plan = RunPlan::new(&args);
    for &n in &counts {
        for (kind, tlt) in SCHEMES {
            plan.scheme(
                "",
                move |_s| cfg(kind, tlt),
                move |s| cache_requests(n, 8, 32_000, s),
            );
        }
    }
    let mut results = plan.run().into_iter();

    let mut rows = Vec::new();
    runner::print_header(
        "Figure 12: 99% response time (ms) vs concurrent 32kB SETs",
        &["TCP", "TCP+TLT", "DCTCP", "DCTCP+TLT"],
    );
    for &n in &counts {
        let mut line = format!("{n:<28}");
        let mut row = vec![n.to_string()];
        for _ in SCHEMES {
            let r = results.next().expect("one result per scheme");
            line.push_str(&format!(
                "{:>10.3}±{:<5.3}",
                r.fg_p99_ms.mean(),
                r.fg_p99_ms.std()
            ));
            row.push(format!("{:.4}", r.fg_p99_ms.mean()));
        }
        println!("{line}");
        rows.push(row);
    }
    runner::maybe_csv(
        &args,
        &[
            "requests",
            "tcp_p99_ms",
            "tcp_tlt_p99_ms",
            "dctcp_p99_ms",
            "dctcp_tlt_p99_ms",
        ],
        &rows,
    );
}
