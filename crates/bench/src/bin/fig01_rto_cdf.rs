//! Figure 1: CDFs of measured RTT vs computed RTO under the standard mix.
//!
//! DCTCP with RTO_min = 200 μs. The paper's point: even with aggressive
//! minimums, the *estimated* RTO inflates far beyond typical RTTs under
//! bursty traffic — >10% of foreground flows computed RTOs above 1.1 ms
//! while the 90th-percentile RTT was 0.48 ms.

use bench::runner::{self, Args};

use transport::{RtoMode, TransportKind};
use workload::{standard_mix, FlowSizeCdf};

fn main() {
    let args = Args::parse();
    let p = args.mix();
    let mut cfg = runner::tcp_cfg(
        &p,
        TransportKind::Dctcp,
        runner::TcpVariant::Baseline,
        false,
    );
    cfg.rto = RtoMode::microsecond();
    let mut mp = p;
    mp.seed = 1;
    let flows = standard_mix(&FlowSizeCdf::web_search(), mp);
    let res = runner::traced_run("fig01/dctcp-rto200us", cfg, flows);

    let mut rows = Vec::new();
    println!("== Figure 1: RTT vs computed RTO CDFs (DCTCP, RTO_min=200us) ==");
    for (label, samples) in [
        ("bg_rtt", res.agg.bg_rtt.clone()),
        ("bg_rto", res.agg.bg_rto.clone()),
        ("fg_rtt", res.agg.fg_rtt.clone()),
        ("fg_rto", res.agg.fg_rto.clone()),
    ] {
        let mut s = samples;
        println!(
            "{label:>8}: n={:<8} p50={:9.1}us p90={:9.1}us p99={:9.1}us max={:9.1}us",
            s.len(),
            s.percentile(50.0).unwrap_or(0.0) * 1e6,
            s.percentile(90.0).unwrap_or(0.0) * 1e6,
            s.percentile(99.0).unwrap_or(0.0) * 1e6,
            s.max() * 1e6,
        );
        for (v, q) in s.cdf(40) {
            rows.push(vec![
                label.to_string(),
                format!("{:.2}", v * 1e6),
                format!("{q:.4}"),
            ]);
        }
    }
    // The paper's observation, quantified.
    let mut fg_rto = res.agg.fg_rto.clone();
    let mut fg_rtt = res.agg.fg_rtt.clone();
    println!(
        "\nfraction of fg flows with RTO > 1.1ms: {:.1}%  (fg RTT p90 = {:.0}us)",
        100.0 * (1.0 - cdf_at(&mut fg_rto, 1.1e-3)),
        fg_rtt.percentile(90.0).unwrap_or(0.0) * 1e6
    );
    runner::maybe_csv(&args, &["series", "value_us", "quantile"], &rows);
}

/// Empirical CDF value at `x`.
fn cdf_at(s: &mut netstats::Samples, x: f64) -> f64 {
    if s.is_empty() {
        return 1.0;
    }
    // Binary-search-free: count via percentile inversion on the CDF dump.
    let pts = s.cdf(1000);
    for (v, q) in pts {
        if v >= x {
            return q;
        }
    }
    1.0
}
