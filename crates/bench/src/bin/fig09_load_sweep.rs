//! Figure 9: sensitivity to network load (10%–60%).
//!
//! HPCC+PFC ± TLT and DCTCP+PFC ± TLT. The paper: TLT keeps HPCC's fg tail
//! low at every load and improves bg FCT more at higher loads (51.9% at
//! 60%); for DCTCP, TLT helps below ~50% load but the retransmission
//! penalty overtakes the HoL-blocking penalty beyond it.

use bench::plan::RunPlan;
use bench::runner::{self, Args, TcpVariant};
use transport::TransportKind;
use workload::{standard_mix, FlowSizeCdf};

const PANELS: [(&str, TransportKind); 2] = [
    ("a: HPCC+PFC", TransportKind::Hpcc),
    ("b: DCTCP+PFC", TransportKind::Dctcp),
];
const LOADS: [f64; 6] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];

fn main() {
    let args = Args::parse();
    let cdf = FlowSizeCdf::web_search();
    let cdf = &cdf;

    let mut plan = RunPlan::new(&args);
    for (_panel, kind) in PANELS {
        for load in LOADS {
            for tlt in [false, true] {
                let mut p = args.mix();
                p.load = load;
                plan.scheme(
                    format!("load={load:.1}{}", if tlt { " +TLT" } else { "" }),
                    move |_s| {
                        if kind.is_roce() {
                            runner::roce_cfg(&p, kind, tlt, true)
                        } else {
                            let v = if tlt {
                                TcpVariant::Tlt
                            } else {
                                TcpVariant::Baseline
                            };
                            runner::tcp_cfg(&p, kind, v, true)
                        }
                    },
                    move |s| {
                        let mut mp = p;
                        mp.seed = s;
                        standard_mix(cdf, mp)
                    },
                );
            }
        }
    }
    let mut results = plan.run().into_iter();

    let mut rows = Vec::new();
    for (panel, kind) in PANELS {
        runner::print_header(
            &format!("Figure 9{panel} load sweep"),
            &["fg p99 (ms)", "bg avg (ms)", "PAUSE/1k"],
        );
        for load in LOADS {
            for tlt in [false, true] {
                let r = results.next().expect("one result per scheme");
                runner::print_row(&r.name, &[&r.fg_p99_ms, &r.bg_avg_ms, &r.pause_per_1k]);
                rows.push(vec![
                    kind.name().to_string(),
                    format!("{load:.1}"),
                    format!("{tlt}"),
                    format!("{:.4}", r.fg_p99_ms.mean()),
                    format!("{:.4}", r.bg_avg_ms.mean()),
                    format!("{:.3}", r.pause_per_1k.mean()),
                ]);
            }
        }
    }
    runner::maybe_csv(
        &args,
        &[
            "transport",
            "load",
            "tlt",
            "fg_p99_ms",
            "bg_avg_ms",
            "pause_per_1k",
        ],
        &rows,
    );
}
