//! Open-loop serving grid on the fat-tree fabric: scheme × load, with
//! per-request SLO accounting.
//!
//! The paper's testbed chapter (§7.3) argues TLT at the *application*
//! level: a single flow-level RTO stalls the request it belongs to, so the
//! request tail — not the flow tail — is what a service operator pays for.
//! This binary is that experiment at simulation scale: every transport
//! scheme (TCP, DCTCP, DCQCN, DCQCN+IRN, HPCC) with and without TLT serves
//! the same open-loop request stream (Poisson arrivals, fan-out
//! partition–aggregate requests, CDF-drawn response sizes) on a k-ary
//! fat-tree, and each request's latency is judged against an SLO with
//! overruns attributed to RTO forensics.
//!
//! Output: a per-scheme SLO table (p50/p99/p999 request latency,
//! timeout-induced vs other violations, incompletes), a `tlt-serve/v1`
//! artifact via `--serve-out` that `benchcmp` can diff and `trace_inspect
//! --serve` can render, and the usual flow-level FCT table for
//! cross-reference. Accounting memory is bounded: requests fold straight
//! into log-linear histograms, so `--scale k24` (3456 hosts) costs the
//! same per-request memory as `--scale k8` (128 hosts).
//!
//! Bespoke flags on top of the standard harness set:
//!
//! * `--scale k8|k24` — fat-tree degree (default k8);
//! * `--serve-out <file>` — write the merged `tlt-serve/v1` report;
//! * `--workload <name>` — response-size CDF (`web_search`, `web_server`,
//!   `cache_follower`; default `cache_follower`);
//! * `--slo-us N` — per-request SLO in microseconds (default 2000);
//! * `--gap-us N` — mean request inter-arrival gap at load 1x (defaults
//!   per scale);
//! * `--fanout N` — partition–aggregate width of fanned-out requests
//!   (default 32, the incast degree where the paper's baselines start
//!   paying timeouts).
//!
//! Determinism: the request stream is a pure function of (params, seed),
//! accounting runs in the plan's analyze hook, and fragments fold in plan
//! order — the table and the `--serve-out` bytes are identical under any
//! `--jobs` value.

use std::collections::BTreeMap;

use bench::plan::RunPlan;
use bench::profiler::Provenance;
use bench::runner::{self, Args};
use dcsim::SimConfig;
use eventsim::SimTime;
use netsim::topology::TopologySpec;
use serve::ServeParams;
use telemetry::ServeReport;
use transport::TransportKind;
use workload::FlowSizeCdf;

/// The paper's five schemes, each run with TLT off and on.
const KINDS: [TransportKind; 5] = [
    TransportKind::Tcp,
    TransportKind::Dctcp,
    TransportKind::DcqcnGbn,
    TransportKind::DcqcnIrn,
    TransportKind::Hpcc,
];

/// Registry-safe scheme label (lowercase, `+tlt` suffix).
fn scheme_label(kind: TransportKind, tlt: bool) -> String {
    let base = kind.name().to_lowercase();
    if tlt {
        format!("{base}+tlt")
    } else {
        base
    }
}

/// Family config for `kind` on a k-ary fat-tree: paper link latencies
/// (10 µs TCP family, 1 µs RoCE family), paper buffer/ECN parameters.
fn grid_cfg(kind: TransportKind, tlt: bool, k: usize) -> SimConfig {
    let (mut cfg, latency) = if kind.is_roce() {
        (SimConfig::roce_family(kind), SimTime::from_us(1))
    } else {
        (SimConfig::tcp_family(kind), SimTime::from_us(10))
    };
    cfg = cfg.with_topology(TopologySpec::paper_fat_tree(k, latency));
    if tlt {
        cfg = cfg.with_tlt();
    }
    cfg
}

/// One load level of the grid: a label suffix and an arrival-rate
/// multiplier applied to the base mean gap.
struct Load {
    suffix: &'static str,
    rate: f64,
}

/// Everything that defines one grid invocation.
struct GridSpec {
    k: usize,
    scale: &'static str,
    base: ServeParams,
    loads: Vec<Load>,
    kinds: Vec<TransportKind>,
}

/// Runs the scheme × load × seed grid and folds the per-request SLO
/// accounting in plan order. The third element is the merged `tlt-spans/v1`
/// report — `Some` only when the `ledger` feature is compiled in.
fn run_grid(
    spec: &GridSpec,
    seeds: u64,
    jobs: usize,
) -> (
    Vec<runner::SchemeResult>,
    ServeReport,
    Option<telemetry::SpanReport>,
) {
    // Scheme label → the exact params that generated its request stream;
    // the analyze hook regenerates the (cheap) request index from these to
    // join request ids against the finished run.
    let mut params_by_scheme: BTreeMap<String, ServeParams> = BTreeMap::new();
    for load in &spec.loads {
        for &kind in &spec.kinds {
            for tlt in [false, true] {
                let name = format!("{}{}", scheme_label(kind, tlt), load.suffix);
                let mut p = spec.base.clone();
                p.mean_gap = SimTime::from_secs_f64(p.mean_gap.as_secs_f64() / load.rate);
                params_by_scheme.insert(name, p);
            }
        }
    }
    let slo = spec.base.slo;

    // Span-tree side channel: the analyze hook returns only a Registry, so
    // per-cell SpanReports land in a shared map keyed by (scheme, seed) and
    // merge in BTreeMap key order after the run — SpanReport::merge is
    // order-independent, so the export stays byte-identical under any
    // `--jobs` value.
    #[cfg(feature = "ledger")]
    let spans_acc: std::sync::Arc<
        std::sync::Mutex<BTreeMap<(String, u64), telemetry::SpanReport>>,
    > = Default::default();
    #[cfg(feature = "ledger")]
    let spans_in = spans_acc.clone();

    let mut plan = RunPlan::sized(jobs, seeds).analyze(move |name, seed, res| {
        let params = &params_by_scheme[name];
        let wl = serve::generate(params, seed);
        let mut rep = serve::account(name, &wl, res, params.slo);
        // Forensic cross-check denominator: every timeout-attributed SLO
        // violation must be backed by at least one recorded RTO.
        rep.reg
            .inc(&format!("serve_rtos/{name}"), res.forensics.len() as u64);
        #[cfg(feature = "ledger")]
        {
            let sp = serve::account_spans(name, seed, &wl, res, params.slo);
            spans_in
                .lock()
                .expect("spans accumulator")
                .insert((name.to_string(), seed), sp);
        }
        rep.reg
    });
    for load in &spec.loads {
        for &kind in &spec.kinds {
            for tlt in [false, true] {
                let name = format!("{}{}", scheme_label(kind, tlt), load.suffix);
                let k = spec.k;
                let params = {
                    let mut p = spec.base.clone();
                    p.mean_gap = SimTime::from_secs_f64(p.mean_gap.as_secs_f64() / load.rate);
                    p
                };
                plan.scheme(
                    name,
                    move |_s| grid_cfg(kind, tlt, k),
                    move |s| serve::generate(&params, s).flows,
                );
            }
        }
    }
    let out = plan.run_detailed();
    let mut rep = ServeReport {
        reg: out.analysis.expect("analyze hook installed"),
    };
    rep.reg.set_meta("scale", spec.scale);
    rep.reg
        .set_meta("slo_ns", &spec.base.slo.as_ns().to_string());
    rep.reg.set_meta("workload", spec.base.response_cdf.name());
    #[cfg(feature = "ledger")]
    let spans = {
        let map = std::mem::take(&mut *spans_acc.lock().expect("spans accumulator"));
        let mut sp = telemetry::SpanReport::new();
        for frag in map.values() {
            sp.merge(frag);
        }
        sp.reg.set_meta("scale", spec.scale);
        sp.reg
            .set_meta("slo_ns", &spec.base.slo.as_ns().to_string());
        sp.reg.set_meta("workload", spec.base.response_cdf.name());
        Some(sp)
    };
    #[cfg(not(feature = "ledger"))]
    let spans = None;
    (out.results, verify_forensic_join(rep, slo), spans)
}

/// Cross-checks the timeout join: per scheme, the per-cause breakdown sums
/// exactly to the timeout-violation counter, and no scheme attributes more
/// violations than it recorded RTOs. Aborts loudly on mismatch — a silent
/// inconsistency here would falsify the headline table.
fn verify_forensic_join(rep: ServeReport, _slo: SimTime) -> ServeReport {
    for scheme in rep.schemes() {
        let viol_t = rep.reg.counter(&format!("serve_slo_viol_timeout/{scheme}"));
        let causes: u64 = rep
            .reg
            .counters()
            .filter(|(k, _)| k.starts_with(&format!("serve_viol_cause/{scheme}/")))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(
            causes, viol_t,
            "scheme {scheme}: cause breakdown {causes} != timeout violations {viol_t}"
        );
        let rtos = rep.reg.counter(&format!("serve_rtos/{scheme}"));
        assert!(
            viol_t <= rtos,
            "scheme {scheme}: {viol_t} timeout violations but only {rtos} forensic RTOs"
        );
    }
    rep
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: serve_grid [--scale k8|k24] [--serve-out file.json] [--spans-out file.json] \
         [--perfetto-out file.json] [--workload name] \
         [--slo-us N] [--gap-us N] [--fanout N] [standard harness flags]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn main() {
    // Pre-extract the bespoke flags, hand the rest to the standard parser.
    let mut scale = "k8".to_string();
    let mut serve_out: Option<String> = None;
    let mut spans_out: Option<String> = None;
    let mut perfetto_out: Option<String> = None;
    let mut workload_name = "cache_follower".to_string();
    let mut slo_us: u64 = 2_000;
    let mut gap_us: Option<u64> = None;
    let mut fanout: usize = 32;
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = it.next().unwrap_or_else(|| usage("--scale needs a value")),
            "--serve-out" => {
                serve_out = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--serve-out needs a path")),
                )
            }
            "--spans-out" => {
                spans_out = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--spans-out needs a path")),
                )
            }
            "--perfetto-out" => {
                perfetto_out = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--perfetto-out needs a path")),
                )
            }
            "--workload" => {
                workload_name = it
                    .next()
                    .unwrap_or_else(|| usage("--workload needs a name"))
            }
            "--slo-us" => {
                slo_us = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .unwrap_or_else(|| usage("--slo-us needs a positive number"))
            }
            "--gap-us" => {
                gap_us = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&v| v > 0)
                        .unwrap_or_else(|| usage("--gap-us needs a positive number")),
                )
            }
            "--fanout" => {
                fanout = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 1)
                    .unwrap_or_else(|| usage("--fanout needs a number > 1"))
            }
            "--help" | "-h" => usage(""),
            other => rest.push(other.to_string()),
        }
    }
    let args = match Args::parse_from(rest) {
        Ok(args) => args,
        Err(msg) => usage(&msg),
    };
    args.init_outputs();

    let cdf = FlowSizeCdf::by_name(&workload_name)
        .unwrap_or_else(|| usage(&format!("unknown workload {workload_name:?}")));
    let (k, hosts, default_gap_us, requests) = match scale.as_str() {
        "k8" => (8, 128, 20, if args.quick { 64 } else { 256 }),
        // k=24 ≈ 3456 hosts: the bounded-memory smoke scale. Fewer
        // requests per host, same accounting structures.
        "k24" => (24, 3456, 10, if args.quick { 128 } else { 512 }),
        other => usage(&format!("unknown scale {other:?} (expected k8 or k24)")),
    };
    if fanout >= hosts {
        usage(&format!(
            "--fanout {fanout} must be below the host count {hosts}"
        ));
    }
    let base = ServeParams {
        hosts,
        requests,
        mean_gap: SimTime::from_us(gap_us.unwrap_or(default_gap_us)),
        fanout,
        fanout_fraction: 0.25,
        query_bytes: 1_600,
        response_cdf: cdf,
        think: SimTime::from_us(5),
        slo: SimTime::from_us(slo_us),
    };
    let loads = if args.quick {
        vec![Load {
            suffix: "",
            rate: 1.0,
        }]
    } else {
        vec![
            Load {
                suffix: "",
                rate: 1.0,
            },
            Load {
                suffix: "@2x",
                rate: 2.0,
            },
        ]
    };
    let spec = GridSpec {
        k,
        scale: if scale == "k24" { "k24" } else { "k8" },
        base,
        loads,
        kinds: KINDS.to_vec(),
    };

    let (results, mut rep, spans) = run_grid(&spec, args.seeds, args.effective_jobs());
    Provenance::deterministic(&args).stamp(&mut rep.reg);
    // The fabric degree is this report's identity; re-pin it over the
    // harness quick/default/full label the provenance stamp wrote.
    rep.reg.set_meta("scale", spec.scale);

    print!("{}", rep.render());
    println!("  forensic cross-check: ok (causes sum to timeout violations, bounded by RTOs)");

    if let Some(sp) = &spans {
        // Runtime conservation gate (release builds included): a nonzero
        // residue would falsify the whole phase table, so abort loudly.
        for scheme in sp.schemes() {
            let r = sp.conservation_residue(&scheme);
            assert_eq!(r, 0, "scheme {scheme}: latency ledger residue {r} ns");
        }
        print!("{}", sp.render());
        println!("  conservation cross-check: ok (sum phases == sum FCT, zero unattributed)");
    } else if spans_out.is_some() || perfetto_out.is_some() {
        eprintln!("error: --spans-out/--perfetto-out need a build with the `ledger` feature");
        std::process::exit(2);
    }

    runner::print_header(
        "flow-level cross-reference (request flows are fg)",
        &["fg p99.9 (ms)", "fg p99 (ms)", "TO/1k"],
    );
    let mut rows = Vec::new();
    for r in &results {
        runner::print_row(&r.name, &[&r.fg_p999_ms, &r.fg_p99_ms, &r.timeouts_per_1k]);
        rows.push(vec![
            r.name.clone(),
            format!("{:.4}", r.fg_p999_ms.mean()),
            format!("{:.4}", r.fg_p99_ms.mean()),
            format!("{:.3}", r.timeouts_per_1k.mean()),
        ]);
    }
    runner::maybe_csv(
        &args,
        &["scheme", "fg_p999_ms", "fg_p99_ms", "timeouts_per_1k"],
        &rows,
    );

    if let Some(path) = &serve_out {
        std::fs::write(path, rep.to_json())
            .unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(sp) = &spans {
        if let Some(path) = &spans_out {
            std::fs::write(path, sp.to_json())
                .unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
            eprintln!("wrote {path}");
        }
        if let Some(path) = &perfetto_out {
            std::fs::write(path, sp.to_perfetto())
                .unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
            eprintln!("wrote {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> GridSpec {
        let mut base = ServeParams::small(16);
        base.requests = 16;
        base.fanout = 3;
        GridSpec {
            k: 4,
            scale: "k4-test",
            base,
            loads: vec![
                Load {
                    suffix: "",
                    rate: 1.0,
                },
                Load {
                    suffix: "@2x",
                    rate: 2.0,
                },
            ],
            kinds: vec![TransportKind::Dctcp],
        }
    }

    /// The acceptance bar: the merged `tlt-serve/v1` report is
    /// byte-identical under different worker counts, covers every scheme ±
    /// TLT, and survives its own parser.
    #[test]
    fn grid_report_is_byte_identical_across_jobs() {
        let (_, seq, _) = run_grid(&tiny_spec(), 1, 1);
        let (_, par, _) = run_grid(&tiny_spec(), 1, 4);
        let a = seq.to_json();
        let b = par.to_json();
        assert_eq!(a, b, "serve report differs under --jobs");
        assert!(a.contains("tlt-serve/v1"));
        let schemes = seq.schemes();
        assert_eq!(
            schemes,
            vec!["dctcp", "dctcp+tlt", "dctcp+tlt@2x", "dctcp@2x"],
            "one latency hist per scheme × load"
        );
        for s in &schemes {
            assert_eq!(seq.reg.counter(&format!("serve_requests/{s}")), 16);
        }
        let back = ServeReport::parse(&a).expect("self-parse");
        assert_eq!(back.to_json(), a);
    }

    /// The spans acceptance bar: `tlt-spans/v1` and its Perfetto rendering
    /// are byte-identical under different worker counts, conservation is
    /// closed for every scheme, and the export survives its own parser.
    #[test]
    #[cfg(feature = "ledger")]
    fn spans_report_is_byte_identical_and_conserved_across_jobs() {
        let (_, _, seq) = run_grid(&tiny_spec(), 2, 1);
        let (_, _, par) = run_grid(&tiny_spec(), 2, 4);
        let seq = seq.expect("ledger feature on");
        let par = par.expect("ledger feature on");
        let a = seq.to_json();
        assert_eq!(a, par.to_json(), "spans report differs under --jobs");
        assert_eq!(
            seq.to_perfetto(),
            par.to_perfetto(),
            "perfetto export differs under --jobs"
        );
        assert!(a.contains("tlt-spans/v1"));
        for scheme in seq.schemes() {
            assert_eq!(
                seq.conservation_residue(&scheme),
                0,
                "scheme {scheme} not conserved"
            );
            assert_eq!(
                seq.reg.counter(&format!("span_unattributed_ns/{scheme}")),
                0
            );
        }
        assert!(!seq.spans.is_empty(), "worst-request reservoir populated");
        let back = telemetry::SpanReport::parse(&a).expect("self-parse");
        assert_eq!(back.to_json(), a);
    }

    #[test]
    fn labels_and_configs_cover_the_paper_schemes() {
        assert_eq!(scheme_label(TransportKind::DcqcnIrn, true), "dcqcn+irn+tlt");
        assert_eq!(scheme_label(TransportKind::Tcp, false), "tcp");
        for kind in KINDS {
            for tlt in [false, true] {
                let cfg = grid_cfg(kind, tlt, 4);
                assert!(matches!(cfg.topology, TopologySpec::FatTree { k: 4, .. }));
                assert_eq!(cfg.tlt.is_some(), tlt);
                if tlt {
                    assert!(cfg.switch.color_threshold.is_some());
                }
            }
        }
    }
}
