//! Cross-run perf diff: compares two measurement artifacts and grades the
//! deltas against a regression threshold.
//!
//! ```text
//! benchcmp [--threshold-pct N] [--fail-on-regression] [--json] [--force] OLD NEW
//! ```
//!
//! `OLD` and `NEW` are JSON files of the same schema: `tlt-bench-baseline/v1`
//! (from `bench_baseline`), `tlt-profile/v1` (from `--profile-out`), or
//! `tlt-metrics/v1` (from `--metrics-out`). Keys containing `wall_ms` are
//! graded lower-is-better, `events_per_sec`/`speedup` higher-is-better, and
//! everything else is informational.
//!
//! Exit codes: `0` compared cleanly (regressions are informational by
//! default), `1` regressions found *and* `--fail-on-regression` was given,
//! `2` usage error, unreadable/malformed input, or a provenance refusal
//! (different `scale`/`build_profile`/`seeds`) without `--force`.

use bench::benchcmp::{compare, load};

struct Opts {
    threshold_pct: f64,
    fail_on_regression: bool,
    json: bool,
    force: bool,
    old: String,
    new: String,
}

const USAGE: &str =
    "usage: benchcmp [--threshold-pct N] [--fail-on-regression] [--json] [--force] OLD NEW";

fn parse_opts(argv: &[String]) -> Result<Opts, String> {
    let mut threshold_pct = 5.0;
    let mut fail_on_regression = false;
    let mut json = false;
    let mut force = false;
    let mut files = Vec::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold-pct" => {
                threshold_pct = it
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| *v >= 0.0)
                    .ok_or("--threshold-pct needs a non-negative number")?;
            }
            "--fail-on-regression" => fail_on_regression = true,
            "--json" => json = true,
            "--force" => force = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{USAGE}"));
            }
            file => files.push(file.to_string()),
        }
    }
    let [old, new] = <[String; 2]>::try_from(files)
        .map_err(|_| format!("expected exactly two input files\n{USAGE}"))?;
    Ok(Opts {
        threshold_pct,
        fail_on_regression,
        json,
        force,
        old,
        new,
    })
}

fn read_doc(path: &str) -> Result<bench::benchcmp::Doc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    load(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&argv) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let (old, new) = match (read_doc(&opts.old), read_doc(&opts.new)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("benchcmp: {e}");
            std::process::exit(2);
        }
    };

    let cmp = compare(&old, &new, opts.threshold_pct);
    if let Some(reason) = &cmp.refusal {
        if opts.force {
            eprintln!("warning: comparing anyway (--force): {reason}");
        } else {
            eprintln!("benchcmp: refusing to compare: {reason} (use --force to override)");
            std::process::exit(2);
        }
    }

    if opts.json {
        print!("{}", cmp.to_json());
    } else {
        println!("benchcmp: {} vs {} ({})", opts.old, opts.new, old.schema);
        print!("{}", cmp.render());
    }

    if opts.fail_on_regression && cmp.regressions().count() > 0 {
        std::process::exit(1);
    }
}
