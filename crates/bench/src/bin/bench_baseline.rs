//! The performance-baseline recorder: times a representative workload
//! suite sequentially (`--jobs 1`) and in parallel, cross-checks that both
//! produce identical results, and writes `BENCH_pr7.json`.
//!
//! The committed reports form the repo's perf trajectory: later PRs re-run
//! the suite and diff against them with the `benchcmp` binary. Built with
//! `--features profile`, `--profile-out` additionally exports the merged
//! event-level engine profile (`tlt-profile/v1`).
//!
//! ```text
//! cargo run --release -p bench --bin bench_baseline              # BENCH_pr7.json
//! cargo run --release -p bench --bin bench_baseline -- --quick --out /tmp/b.json
//! cargo run --release -p bench --features profile --bin bench_baseline -- \
//!     --quick --profile-out /tmp/prof.json
//! ```

use bench::baseline;
use bench::runner::Args;

fn main() {
    let args = Args::parse();
    let report = baseline::run_suite(&args);

    println!(
        "\n== bench_baseline: {} scale, {} seeds, {} cores, --jobs {} ==",
        report.scale, report.seeds, report.cores, report.jobs
    );
    println!(
        "{:<18}{:>10}{:>14}{:>14}{:>9}{:>16}{:>8}",
        "workload", "jobs run", "jobs1 (ms)", "jobsN (ms)", "speedup", "events/s (N)", "det"
    );
    for w in &report.workloads {
        let eps = if w.wall_ms_jobsn > 0.0 {
            w.events_scheduled as f64 / (w.wall_ms_jobsn / 1e3)
        } else {
            0.0
        };
        println!(
            "{:<18}{:>10}{:>14.1}{:>14.1}{:>8.2}x{:>16.0}{:>8}",
            w.name,
            w.jobs_run,
            w.wall_ms_jobs1,
            w.wall_ms_jobsn,
            w.speedup(),
            eps,
            if w.deterministic { "yes" } else { "NO" }
        );
    }
    println!(
        "{:<18}{:>10}{:>14.1}{:>14.1}{:>8.2}x",
        "total",
        "",
        report.total_jobs1_ms(),
        report.total_jobsn_ms(),
        report.total_speedup()
    );

    let prof = bench::simprof::render();
    if !prof.is_empty() {
        println!();
        print!("{prof}");
    }

    let path = args.out.as_deref().unwrap_or("BENCH_pr7.json");
    std::fs::write(path, report.to_json()).expect("write baseline report");
    eprintln!("wrote {path}");

    if !report.all_deterministic() {
        eprintln!("error: parallel results diverged from sequential results");
        std::process::exit(1);
    }
}
