//! Figure 15 (table): 99.9%-ile foreground FCT across workloads and loads.
//!
//! Three background workloads (Web Search, Web Server, Cache Follower) at
//! loads 0.2–0.5, with 16 kB incast foreground (four flows per host, as in
//! Appendix B). Columns: DCTCP and TCP with {baseline, TLP, 200 μs, TLT},
//! plus DCQCN+SACK(+PFC), DCQCN+IRN, and HPCC(+PFC) baseline vs TLT.
//! The paper: TLT gives the best tail for (DC)TCP and IRN across all
//! workloads/loads; for DCQCN/HPCC with SACK, PFC's tail is competitive
//! but TLT still wins on background FCT.

use bench::plan::RunPlan;
use bench::runner::{self, Args, TcpVariant};
use transport::TransportKind;
use workload::{standard_mix, FlowSizeCdf, MixParams};

const ROCE: [(TransportKind, bool); 3] = [
    (TransportKind::DcqcnSack, true),
    (TransportKind::DcqcnIrn, false),
    (TransportKind::Hpcc, true),
];

fn mix_for(args: &Args, load: f64) -> MixParams {
    let mut p = args.mix();
    p.load = load;
    p.incast_flows_per_sender = 4;
    p.incast_flow_bytes = 16_000;
    p
}

fn main() {
    let args = Args::parse();
    // This table is 14 schemes x 4 loads x 3 workloads; default to 1 seed.
    let seeds = if args.full { args.seeds } else { 1 };
    let loads: Vec<f64> = if args.quick {
        vec![0.3]
    } else {
        vec![0.2, 0.3, 0.4, 0.5]
    };
    let workloads = [
        ("web_search", FlowSizeCdf::web_search()),
        ("web_server", FlowSizeCdf::web_server()),
        ("cache_follower", FlowSizeCdf::cache_follower()),
    ];

    let mut plan = RunPlan::new(&args);
    for (_wname, cdf) in &workloads {
        for &load in &loads {
            let p = mix_for(&args, load);
            // TCP family.
            for kind in [TransportKind::Dctcp, TransportKind::Tcp] {
                for v in TcpVariant::ALL {
                    plan.scheme_seeds(
                        format!("{} {}", kind.name(), v.label()),
                        seeds,
                        move |_s| runner::tcp_cfg(&p, kind, v, false),
                        move |s| {
                            let mut mp = p;
                            mp.seed = s;
                            standard_mix(cdf, mp)
                        },
                    );
                }
            }
            // RoCE family: baseline (+PFC where the paper does) vs TLT.
            for (kind, base_pfc) in ROCE {
                for tlt in [false, true] {
                    let pfc = base_pfc && !tlt;
                    plan.scheme_seeds(
                        format!(
                            "{}{}{}",
                            kind.name(),
                            if pfc { "+PFC" } else { "" },
                            if tlt { "+TLT" } else { "" }
                        ),
                        seeds,
                        move |_s| runner::roce_cfg(&p, kind, tlt, pfc),
                        move |s| {
                            let mut mp = p;
                            mp.seed = s;
                            standard_mix(cdf, mp)
                        },
                    );
                }
            }
        }
    }
    let mut results = plan.run().into_iter();

    let mut rows = Vec::new();
    for (wname, _cdf) in &workloads {
        for &load in &loads {
            println!("\n== Figure 15: {wname}, load {load:.1} — fg p99.9 (ms) ==");
            let mut row = vec![wname.to_string(), format!("{load:.1}")];
            // 8 TCP-family schemes, then 6 RoCE-family schemes, in the
            // order they were enqueued above.
            for _ in 0..14 {
                let r = results.next().expect("one result per scheme");
                println!("  {:<24}{:8.3}", r.name, r.fg_p999_ms.mean());
                row.push(format!("{:.4}", r.fg_p999_ms.mean()));
            }
            rows.push(row);
        }
    }
    runner::maybe_csv(
        &args,
        &[
            "workload",
            "load",
            "dctcp",
            "dctcp_tlp",
            "dctcp_200us",
            "dctcp_tlt",
            "tcp",
            "tcp_tlp",
            "tcp_200us",
            "tcp_tlt",
            "dcqcn_sack_pfc",
            "dcqcn_sack_tlt",
            "dcqcn_irn",
            "dcqcn_irn_tlt",
            "hpcc_pfc",
            "hpcc_tlt",
        ],
        &rows,
    );
}
