//! Figure 13: in-memory cache with mixed traffic.
//!
//! 152 foreground 32 kB SETs from 8 web servers compete with one 8 MB
//! background flow into the same cache node. The paper: DCTCP's fg p99 FCT
//! reaches 11.3 ms; DCTCP+TLT achieves 3.39 ms (−71.2%) at the cost of a
//! 5.6% background-goodput dip.

use bench::plan::RunPlan;
use bench::runner::{self, Args, TcpVariant};
use dcsim::{small_single_switch, SimConfig};
use transport::TransportKind;
use workload::cache_mixed;

fn cfg(tlt: bool) -> SimConfig {
    let v = if tlt {
        TcpVariant::Tlt
    } else {
        TcpVariant::Baseline
    };
    let p = workload::MixParams::reduced(1);
    runner::tcp_cfg(&p, TransportKind::Dctcp, v, false).with_topology(small_single_switch(10))
}

fn main() {
    let args = Args::parse();

    let mut plan = RunPlan::new(&args);
    for tlt in [false, true] {
        plan.scheme_seeds(
            format!("DCTCP{}", if tlt { "+TLT" } else { "" }),
            args.seeds.max(4), // the paper averages four runs
            move |_s| cfg(tlt),
            move |s| cache_mixed(152, 8, 32_000, 8_000_000, s),
        );
    }
    let results = plan.run();

    let mut rows = Vec::new();
    runner::print_header(
        "Figure 13: 152 x 32kB SETs + 8MB bulk flow (DCTCP)",
        &["fg p99 (ms)", "bg gbps", "TO/1k"],
    );
    for r in &results {
        runner::print_row(
            &r.name,
            &[&r.fg_p99_ms, &r.bg_goodput_gbps, &r.timeouts_per_1k],
        );
        rows.push(vec![
            r.name.clone(),
            format!("{:.4}", r.fg_p99_ms.mean()),
            format!("{:.4}", r.bg_goodput_gbps.mean()),
            format!("{:.3}", r.timeouts_per_1k.mean()),
        ]);
    }
    runner::maybe_csv(
        &args,
        &["scheme", "fg_p99_ms", "bg_goodput_gbps", "timeouts_per_1k"],
        &rows,
    );
}
