//! Figure 7: timeouts per 1 k flows, PAUSE frames per 1 k flows, and the
//! average fraction of time links spend paused.
//!
//! Panel (a) compares loss-recovery variants on the lossy network (DCTCP
//! and TCP); panels (b)/(c) compare PFC-enabled schemes with and without
//! TLT. Paper: DCTCP+TLT nearly eliminates timeouts; TLT reduces PAUSE
//! frames by 27.7% (DCTCP) / 93.2% (TCP) and paused time by 66.7% / 95.8%.

use bench::plan::RunPlan;
use bench::runner::{self, Args, TcpVariant};
use transport::TransportKind;
use workload::{standard_mix, FlowSizeCdf};

fn main() {
    let args = Args::parse();
    let cdf = FlowSizeCdf::web_search();
    let cdf = &cdf;
    let p = args.mix();

    // Panels (a) and (b)/(c) share one plan so every (scheme, seed) job
    // draws from the same worker pool.
    let mut plan = RunPlan::new(&args);
    for kind in [TransportKind::Dctcp, TransportKind::Tcp] {
        for v in TcpVariant::ALL {
            plan.scheme(
                format!("{} {}", kind.name(), v.label()),
                move |_s| runner::tcp_cfg(&p, kind, v, false),
                move |s| {
                    let mut mp = p;
                    mp.seed = s;
                    standard_mix(cdf, mp)
                },
            );
        }
    }
    let panel_a = plan.len();
    for (kind, tlt) in [
        (TransportKind::Dctcp, false),
        (TransportKind::Dctcp, true),
        (TransportKind::Tcp, false),
        (TransportKind::Tcp, true),
    ] {
        let v = if tlt {
            TcpVariant::Tlt
        } else {
            TcpVariant::Baseline
        };
        plan.scheme(
            format!("{}+PFC{}", kind.name(), if tlt { "+TLT" } else { "" }),
            move |_s| runner::tcp_cfg(&p, kind, v, true),
            move |s| {
                let mut mp = p;
                mp.seed = s;
                standard_mix(cdf, mp)
            },
        );
    }
    let results = plan.run();

    let mut rows = Vec::new();
    runner::print_header(
        "Figure 7a: timeouts per 1k flows (lossy network)",
        &["TO/1k", "imp loss rate"],
    );
    for r in &results[..panel_a] {
        runner::print_row(&r.name, &[&r.timeouts_per_1k, &r.important_loss]);
        rows.push(vec![
            r.name.clone(),
            format!("{:.3}", r.timeouts_per_1k.mean()),
            format!("{:.3e}", r.important_loss.mean()),
            String::new(),
            String::new(),
        ]);
    }

    runner::print_header(
        "Figure 7b/7c: PAUSE frames and paused time (PFC network)",
        &["PAUSE/1k", "pause frac", "TO/1k"],
    );
    for r in &results[panel_a..] {
        runner::print_row(
            &r.name,
            &[&r.pause_per_1k, &r.pause_frac, &r.timeouts_per_1k],
        );
        rows.push(vec![
            r.name.clone(),
            format!("{:.3}", r.timeouts_per_1k.mean()),
            String::new(),
            format!("{:.3}", r.pause_per_1k.mean()),
            format!("{:.5}", r.pause_frac.mean()),
        ]);
    }

    runner::maybe_csv(
        &args,
        &[
            "scheme",
            "timeouts_per_1k",
            "important_loss",
            "pause_per_1k",
            "pause_frac",
        ],
        &rows,
    );
}
