//! Recovery under injected failures: link flaps, bursty corruption, and
//! PFC pause storms, across the five transport schemes with and without
//! TLT.
//!
//! The paper's §5 draws a sharp boundary: TLT eliminates *congestion*
//! timeouts but deliberately does not recover *non-congestion* losses
//! (flaps, corruption), which fall back to the transport. This scenario
//! suite makes that boundary measurable: a synchronized incast supplies
//! the congestion-timeout regime while a fault schedule injects the
//! non-congestion failure, and the table reports how each scheme recovered
//! (RTO count, fast retransmissions, down-link drops, post-fault recovery
//! time, and foreground tail FCT).
//!
//! Scenarios (single switch, 49 incast senders + 1 bulk sender):
//! - `flap`: the bulk sender's NIC link drops for 5 μs (well under the
//!   40 μs base RTT) mid-transfer — short enough that the hole it punches
//!   in the stream is filled by fast retransmit, never an RTO.
//! - `burst`: Gilbert–Elliott bursty corruption on the switch→receiver
//!   downlink — multi-frame loss episodes that hit flow tails.
//! - `storm`: a spurious 200 μs PFC pause storm against the bulk sender's
//!   switch ingress.

use bench::plan::RunPlan;
use bench::runner::{self, Args};
use dcsim::{small_single_switch, FlowSpec, SimConfig};
use eventsim::SimTime;
use faults::FaultSchedule;
use netsim::switch::EcnConfig;
use transport::TransportKind;

/// Incast fan-in degree (hosts 1..=SENDERS each send two 8 kB flows).
const SENDERS: usize = 48;
/// The bulk background sender's host index.
const BULK: usize = SENDERS + 1;
/// Total hosts: receiver + incast senders + bulk sender.
const HOSTS: usize = SENDERS + 2;

/// The five transport schemes of the paper's evaluation.
pub const KINDS: [(&str, TransportKind); 5] = [
    ("tcp", TransportKind::Tcp),
    ("dctcp", TransportKind::Dctcp),
    ("hpcc", TransportKind::Hpcc),
    ("dcqcn-gbn", TransportKind::DcqcnGbn),
    ("dcqcn-irn", TransportKind::DcqcnIrn),
];

/// The failure scenarios. Node numbering in `small_single_switch`: the
/// switch is node 0 and host index `k` is node `k + 1`; switch port `k`
/// faces host `k`.
pub fn scenarios() -> Vec<(&'static str, FaultSchedule)> {
    vec![
        (
            "flap",
            FaultSchedule::new().link_flap(
                SimTime::from_us(400),
                BULK as u32 + 1,
                0,
                SimTime::from_us(5),
            ),
        ),
        (
            "burst",
            FaultSchedule::new().burst_loss(SimTime::ZERO, 0, 0, 0.002, 8.0, 0.5),
        ),
        (
            "storm",
            FaultSchedule::new().pause_storm(
                SimTime::from_us(200),
                0,
                BULK as u32,
                SimTime::from_us(200),
            ),
        ),
    ]
}

/// The incast recipe of the engine's timeout-regime test: a 800 kB shared
/// buffer that 96 synchronized 8 kB flows overflow, so baseline transports
/// take RTOs and TLT does not.
pub fn scenario_cfg(kind: TransportKind, tlt: bool, faults: FaultSchedule) -> SimConfig {
    let mut cfg = if kind.is_roce() {
        SimConfig::roce_family(kind)
    } else {
        SimConfig::tcp_family(kind)
    };
    cfg = cfg.with_topology(small_single_switch(HOSTS));
    cfg.switch.buffer_bytes = 800_000;
    if kind == TransportKind::Dctcp {
        cfg.switch.ecn = EcnConfig::Threshold { k: 100_000 };
    }
    if tlt {
        cfg = cfg.with_tlt();
        cfg.switch.color_threshold = Some(150_000);
    }
    cfg.with_faults(faults)
}

/// Synchronized incast (two 8 kB foreground flows per sender) plus one
/// 2 MB bulk background flow — the traffic every scenario runs.
pub fn scenario_flows() -> Vec<FlowSpec> {
    let mut v: Vec<FlowSpec> = (1..=SENDERS)
        .flat_map(|s| {
            [
                FlowSpec::new(s, 0, 8_000, SimTime::ZERO, true),
                FlowSpec::new(s, 0, 8_000, SimTime::ZERO, true),
            ]
        })
        .collect();
    v.push(FlowSpec::new(BULK, 0, 2_000_000, SimTime::ZERO, false));
    v
}

fn main() {
    let args = Args::parse();

    let mut plan = RunPlan::new(&args);
    let mut layout = Vec::new(); // (scenario, scheme-label) in plan order
    for (scenario, faults) in scenarios() {
        for (tname, kind) in KINDS {
            for tlt in [false, true] {
                let label = format!("{scenario}/{tname}{}", if tlt { "+tlt" } else { "" });
                layout.push((scenario, label.clone()));
                let faults = faults.clone();
                plan.scheme(
                    label,
                    move |_s| scenario_cfg(kind, tlt, faults.clone()),
                    |_s| scenario_flows(),
                );
            }
        }
    }
    let results = plan.run();

    let mut rows = Vec::new();
    let mut shown = "";
    for ((scenario, _), r) in layout.iter().zip(&results) {
        if *scenario != shown {
            shown = scenario;
            runner::print_header(
                &format!("Recovery under failure: {scenario}"),
                &[
                    "RTO",
                    "fast-rtx",
                    "down-drop",
                    "wire-drop",
                    "recov ms",
                    "fg p99 ms",
                    "fg p999 ms",
                ],
            );
        }
        runner::print_row(
            &r.name,
            &[
                &r.timeouts_total,
                &r.fast_retx_total,
                &r.down_drops,
                &r.wire_drops,
                &r.recovery_ms,
                &r.fg_p99_ms,
                &r.fg_p999_ms,
            ],
        );
        rows.push(vec![
            scenario.to_string(),
            r.name.clone(),
            format!("{:.1}", r.timeouts_total.mean()),
            format!("{:.1}", r.fast_retx_total.mean()),
            format!("{:.1}", r.down_drops.mean()),
            format!("{:.1}", r.wire_drops.mean()),
            format!("{:.4}", r.recovery_ms.mean()),
            format!("{:.4}", r.fg_p99_ms.mean()),
            format!("{:.4}", r.fg_p999_ms.mean()),
        ]);
    }
    runner::maybe_csv(
        &args,
        &[
            "scenario",
            "scheme",
            "rto",
            "fast_retx",
            "down_drops",
            "wire_drops",
            "recovery_ms",
            "fg_p99_ms",
            "fg_p999_ms",
        ],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::Engine;

    /// The headline acceptance check: in the link-flap scenario, TLT-enabled
    /// TCP completes with zero RTO-driven retransmissions while baseline TCP
    /// records timeouts — the flap is recovered by fast retransmit, the
    /// congestion timeouts by TLT.
    #[test]
    fn flap_scenario_tlt_tcp_has_zero_rtos_baseline_does_not() {
        let faults = scenarios()
            .into_iter()
            .find(|(n, _)| *n == "flap")
            .unwrap()
            .1;
        let run = |tlt: bool| {
            let cfg = scenario_cfg(TransportKind::Tcp, tlt, faults.clone());
            Engine::new(cfg, scenario_flows()).run()
        };
        let base = run(false);
        let tlt = run(true);
        assert!(
            base.agg.timeouts > 0,
            "baseline TCP should take congestion timeouts in the incast"
        );
        assert_eq!(tlt.agg.timeouts, 0, "TLT TCP must not take a single RTO");
        assert!(
            tlt.agg.down_drops > 0,
            "the flap actually destroyed frames under TLT too"
        );
        assert!(
            tlt.flows.iter().all(|f| f.end.is_some()),
            "every TLT flow completes despite the flap"
        );
    }

    /// Forensics acceptance over the whole grid: every RTO any (scenario,
    /// scheme) cell takes is attributed — one forensic record per timeout,
    /// per-cause counts summing to the RTO total, and never `Unknown`.
    #[test]
    fn every_rto_in_the_suite_has_a_known_root_cause() {
        use telemetry::RtoCause;
        for (scenario, faults) in scenarios() {
            for (tname, kind) in KINDS {
                for tlt in [false, true] {
                    let cfg = scenario_cfg(kind, tlt, faults.clone()).with_seed(1);
                    let res = Engine::new(cfg, scenario_flows()).run();
                    let cell = format!("{scenario}/{tname}{}", if tlt { "+tlt" } else { "" });
                    assert_eq!(
                        res.forensics.len() as u64,
                        res.agg.timeouts,
                        "{cell}: one forensic record per RTO"
                    );
                    assert_eq!(
                        res.agg.rto_causes.total(),
                        res.agg.timeouts,
                        "{cell}: per-cause counts must sum to the RTO total"
                    );
                    assert_eq!(
                        res.agg.rto_causes.get(RtoCause::Unknown),
                        0,
                        "{cell}: every RTO must carry a known root cause"
                    );
                }
            }
        }
    }
}
