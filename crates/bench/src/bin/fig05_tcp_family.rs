//! Figure 5: FCT for TCP and DCTCP under the standard mix.
//!
//! Reproduces the paper's comparison of {4 ms RTO_min baseline, TLP,
//! 200 μs RTO_min, TLT} with and without PFC, reporting the 99.9%-ile FCT
//! of foreground incast flows and the average FCT of background flows.
//!
//! Paper's headline numbers (full scale): DCTCP baseline fg p99.9 ≈ 13 ms;
//! +PFC ≈ 2.1 ms but bg avg 19.3 → 48.8 ms; +TLT ≈ 80.9% lower fg p99.9
//! than baseline with only a slight bg increase.

use bench::plan::RunPlan;
use bench::runner::{self, Args, TcpVariant};
use transport::TransportKind;
use workload::{standard_mix, FlowSizeCdf};

fn main() {
    let args = Args::parse();
    let cdf = FlowSizeCdf::web_search();
    let cdf = &cdf;
    let p = args.mix();

    let mut plan = RunPlan::new(&args);
    for kind in [TransportKind::Dctcp, TransportKind::Tcp] {
        for pfc in [false, true] {
            for v in TcpVariant::ALL {
                let name = format!(
                    "{}{} {}",
                    kind.name(),
                    if pfc { "+PFC" } else { "" },
                    v.label()
                );
                plan.scheme(
                    name,
                    move |_s| runner::tcp_cfg(&p, kind, v, pfc),
                    move |s| {
                        let mut mp = p;
                        mp.seed = s;
                        standard_mix(cdf, mp)
                    },
                );
            }
        }
    }
    let results = plan.run();

    let mut rows = Vec::new();
    runner::print_header(
        "Figure 5: TCP/DCTCP FCT (standard mix)",
        &["fg p99.9 (ms)", "fg p99 (ms)", "bg avg (ms)", "TO/1k"],
    );
    for r in &results {
        runner::print_row(
            &r.name,
            &[
                &r.fg_p999_ms,
                &r.fg_p99_ms,
                &r.bg_avg_ms,
                &r.timeouts_per_1k,
            ],
        );
        rows.push(vec![
            r.name.clone(),
            format!("{:.4}", r.fg_p999_ms.mean()),
            format!("{:.4}", r.fg_p99_ms.mean()),
            format!("{:.4}", r.bg_avg_ms.mean()),
            format!("{:.3}", r.timeouts_per_1k.mean()),
        ]);
    }
    runner::maybe_csv(
        &args,
        &[
            "scheme",
            "fg_p999_ms",
            "fg_p99_ms",
            "bg_avg_ms",
            "timeouts_per_1k",
        ],
        &rows,
    );
}
