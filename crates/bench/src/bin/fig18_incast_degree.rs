//! Figure 18: sensitivity to the incast degree.
//!
//! The standard mix with 2–10 foreground flows per sending host. The
//! paper: TLT's advantage grows with the incast degree — up to 78.9%
//! (HPCC) and 67.0% (TCP) lower fg tail FCT at the highest degrees.

use bench::plan::RunPlan;
use bench::runner::{self, Args, TcpVariant};
use transport::TransportKind;
use workload::{standard_mix, FlowSizeCdf};

const KINDS: [TransportKind; 2] = [TransportKind::Hpcc, TransportKind::Tcp];
const DEGREES: [u32; 5] = [2, 4, 6, 8, 10];

fn main() {
    let args = Args::parse();
    let cdf = FlowSizeCdf::web_search();
    let cdf = &cdf;

    let mut plan = RunPlan::new(&args);
    for kind in KINDS {
        for degree in DEGREES {
            for tlt in [false, true] {
                let mut p = args.mix();
                p.incast_flows_per_sender = degree;
                plan.scheme(
                    format!("deg={degree}{}", if tlt { " +TLT" } else { "" }),
                    move |_s| {
                        if kind.is_roce() {
                            runner::roce_cfg(&p, kind, tlt, false)
                        } else {
                            let v = if tlt {
                                TcpVariant::Tlt
                            } else {
                                TcpVariant::Baseline
                            };
                            runner::tcp_cfg(&p, kind, v, false)
                        }
                    },
                    move |s| {
                        let mut mp = p;
                        mp.seed = s;
                        standard_mix(cdf, mp)
                    },
                );
            }
        }
    }
    let mut results = plan.run().into_iter();

    let mut rows = Vec::new();
    for kind in KINDS {
        runner::print_header(
            &format!("Figure 18: incast degree sweep, {}", kind.name()),
            &["fg p99 (ms)", "bg avg (ms)"],
        );
        for degree in DEGREES {
            for tlt in [false, true] {
                let r = results.next().expect("one result per scheme");
                runner::print_row(&r.name, &[&r.fg_p99_ms, &r.bg_avg_ms]);
                rows.push(vec![
                    kind.name().to_string(),
                    degree.to_string(),
                    tlt.to_string(),
                    format!("{:.4}", r.fg_p99_ms.mean()),
                    format!("{:.4}", r.bg_avg_ms.mean()),
                ]);
            }
        }
    }
    runner::maybe_csv(
        &args,
        &["transport", "degree", "tlt", "fg_p99_ms", "bg_avg_ms"],
        &rows,
    );
}
