//! Figure 8: sensitivity to the color-aware dropping threshold K.
//!
//! DCTCP + TLT under the standard mix, sweeping K from 200 kB to 1 MB,
//! without (panel a) and with (panel b) PFC. The paper: without PFC a
//! larger K raises fg tail FCT but lowers bg FCT; beyond ~700 kB important
//! drops start costing timeouts. With PFC, both rise as PAUSE becomes
//! frequent, until extreme HoL blocking reverses the fg trend.

use bench::plan::RunPlan;
use bench::runner::{self, Args, TcpVariant};
use transport::TransportKind;
use workload::{standard_mix, FlowSizeCdf};

const KS: [u64; 9] = [200, 300, 400, 500, 600, 700, 800, 900, 1000];

fn main() {
    let args = Args::parse();
    let cdf = FlowSizeCdf::web_search();
    let cdf = &cdf;
    let p = args.mix();

    let mut plan = RunPlan::new(&args);
    for pfc in [false, true] {
        for k in KS {
            plan.scheme(
                format!("K={k}kB"),
                move |_s| {
                    let mut cfg = runner::tcp_cfg(&p, TransportKind::Dctcp, TcpVariant::Tlt, pfc);
                    cfg.switch.color_threshold = Some(k * 1000);
                    cfg
                },
                move |s| {
                    let mut mp = p;
                    mp.seed = s;
                    standard_mix(cdf, mp)
                },
            );
        }
    }
    let mut results = plan.run().into_iter();

    let mut rows = Vec::new();
    for pfc in [false, true] {
        runner::print_header(
            &format!(
                "Figure 8{}: K sweep (DCTCP+TLT{})",
                if pfc { "b" } else { "a" },
                if pfc { "+PFC" } else { "" }
            ),
            &["fg p99.9 (ms)", "bg avg (ms)", "imp loss", "PAUSE/1k"],
        );
        for k in KS {
            let r = results.next().expect("one result per scheme");
            runner::print_row(
                &r.name,
                &[
                    &r.fg_p999_ms,
                    &r.bg_avg_ms,
                    &r.important_loss,
                    &r.pause_per_1k,
                ],
            );
            rows.push(vec![
                format!("{}", pfc),
                format!("{k}"),
                format!("{:.4}", r.fg_p999_ms.mean()),
                format!("{:.4}", r.bg_avg_ms.mean()),
                format!("{:.3e}", r.important_loss.mean()),
                format!("{:.3}", r.pause_per_1k.mean()),
            ]);
        }
    }
    runner::maybe_csv(
        &args,
        &[
            "pfc",
            "k_kb",
            "fg_p999_ms",
            "bg_avg_ms",
            "important_loss",
            "pause_per_1k",
        ],
        &rows,
    );
}
