//! Figure 11: (a) important fraction vs the color threshold K;
//! (b) queue occupancy with and without TLT.
//!
//! DCTCP under the standard mix. The paper: with K = 400 kB, 5.9% of
//! packets are important (smaller K ⇒ more red drops ⇒ more important
//! retransmissions); vanilla DCTCP's max queue reaches 2.18 MB under
//! bursty arrivals while TLT caps the total ~23% lower and keeps the
//! median near 130 kB, under the ECN threshold.

use bench::plan::RunPlan;
use bench::runner::{self, Args, TcpVariant};
use eventsim::SimTime;
use transport::TransportKind;
use workload::{standard_mix, FlowSizeCdf};

const KS: [u64; 5] = [200, 300, 400, 500, 600];

fn main() {
    let args = Args::parse();
    let cdf = FlowSizeCdf::web_search();
    let cdf = &cdf;
    let p = args.mix();

    let mut plan = RunPlan::new(&args);
    for k in KS {
        plan.scheme(
            format!("K={k}kB"),
            move |_s| {
                let mut cfg = runner::tcp_cfg(&p, TransportKind::Dctcp, TcpVariant::Tlt, false);
                cfg.switch.color_threshold = Some(k * 1000);
                cfg
            },
            move |s| {
                let mut mp = p;
                mp.seed = s;
                standard_mix(cdf, mp)
            },
        );
    }
    let panel_a = plan.len();
    for tlt in [false, true] {
        let v = if tlt {
            TcpVariant::Tlt
        } else {
            TcpVariant::Baseline
        };
        plan.scheme(
            format!("DCTCP{}", if tlt { "+TLT" } else { "" }),
            move |_s| {
                let mut cfg = runner::tcp_cfg(&p, TransportKind::Dctcp, v, false);
                cfg.queue_sample_every = Some(SimTime::from_us(20));
                cfg
            },
            move |s| {
                let mut mp = p;
                mp.seed = s;
                standard_mix(cdf, mp)
            },
        );
    }
    let results = plan.run();

    let mut rows = Vec::new();
    runner::print_header(
        "Figure 11a: important fraction vs K (DCTCP+TLT)",
        &["important frac"],
    );
    for (k, r) in KS.iter().zip(&results[..panel_a]) {
        runner::print_row(&r.name, &[&r.important_frac]);
        rows.push(vec![
            "11a".into(),
            format!("{k}"),
            format!("{:.4}", r.important_frac.mean()),
            String::new(),
        ]);
    }

    runner::print_header(
        "Figure 11b: queue occupancy (DCTCP vs DCTCP+TLT)",
        &["max q (kB)", "median q (kB)"],
    );
    for r in &results[panel_a..] {
        runner::print_row(&r.name, &[&r.max_queue_kb, &r.median_queue_kb]);
        rows.push(vec![
            "11b".into(),
            r.name.clone(),
            format!("{:.1}", r.max_queue_kb.mean()),
            format!("{:.1}", r.median_queue_kb.mean()),
        ]);
    }
    runner::maybe_csv(&args, &["panel", "scheme_or_k", "value1", "value2"], &rows);
}
