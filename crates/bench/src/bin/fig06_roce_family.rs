//! Figure 6: FCT for HPCC and DCQCN (vanilla / +SACK / +IRN).
//!
//! Reproduces the RoCE-family comparison under the standard mix: each
//! scheme with and without PFC, baseline vs TLT (IRN is evaluated without
//! PFC, as in the paper). Reports fg 99.9%-ile and bg average FCT.
//!
//! Paper's headline numbers: TLT cuts HPCC's fg p99.9 by 78.5% (no PFC)
//! and vanilla DCQCN's by 69.1%; with DCQCN+SACK+PFC it cuts bg avg by
//! 21.4% via fewer PAUSE frames.

use bench::plan::RunPlan;
use bench::runner::{self, Args};
use transport::TransportKind;
use workload::{standard_mix, FlowSizeCdf};

fn main() {
    let args = Args::parse();
    let cdf = FlowSizeCdf::web_search();
    let cdf = &cdf;
    let p = args.mix();

    let schemes: Vec<(TransportKind, bool, bool)> = vec![
        // (kind, tlt, pfc)
        (TransportKind::Hpcc, false, false),
        (TransportKind::Hpcc, false, true),
        (TransportKind::Hpcc, true, false),
        (TransportKind::Hpcc, true, true),
        (TransportKind::DcqcnIrn, false, false),
        (TransportKind::DcqcnIrn, true, false),
        (TransportKind::DcqcnSack, false, false),
        (TransportKind::DcqcnSack, false, true),
        (TransportKind::DcqcnSack, true, false),
        (TransportKind::DcqcnSack, true, true),
        (TransportKind::DcqcnGbn, false, false),
        (TransportKind::DcqcnGbn, false, true),
        (TransportKind::DcqcnGbn, true, false),
        (TransportKind::DcqcnGbn, true, true),
    ];
    let mut plan = RunPlan::new(&args);
    for (kind, tlt, pfc) in schemes {
        let name = format!(
            "{}{}{}",
            kind.name(),
            if pfc { "+PFC" } else { "" },
            if tlt { "+TLT" } else { "" }
        );
        plan.scheme(
            name,
            move |_s| runner::roce_cfg(&p, kind, tlt, pfc),
            move |s| {
                let mut mp = p;
                mp.seed = s;
                standard_mix(cdf, mp)
            },
        );
    }
    let results = plan.run();

    let mut rows = Vec::new();
    runner::print_header(
        "Figure 6: RoCE-family FCT (standard mix)",
        &["fg p99.9 (ms)", "fg p99 (ms)", "bg avg (ms)", "TO/1k"],
    );
    for r in &results {
        runner::print_row(
            &r.name,
            &[
                &r.fg_p999_ms,
                &r.fg_p99_ms,
                &r.bg_avg_ms,
                &r.timeouts_per_1k,
            ],
        );
        rows.push(vec![
            r.name.clone(),
            format!("{:.4}", r.fg_p999_ms.mean()),
            format!("{:.4}", r.fg_p99_ms.mean()),
            format!("{:.4}", r.bg_avg_ms.mean()),
            format!("{:.3}", r.timeouts_per_1k.mean()),
        ]);
    }
    runner::maybe_csv(
        &args,
        &[
            "scheme",
            "fg_p999_ms",
            "fg_p99_ms",
            "bg_avg_ms",
            "timeouts_per_1k",
        ],
        &rows,
    );
}
