//! Table 1: important-packet loss rate vs the color threshold.
//!
//! (DC)TCP + TLT with K ∈ {400, 500, 600 kB} and foreground share ∈
//! {5%, 10%}. The paper: zero important drops at K = 400 kB for DCTCP; a
//! larger K leaves less reserved room, so the rate climbs (to 3.49e-3 at
//! 600 kB / 10% for DCTCP) — and TCP, which keeps deeper queues, loses
//! slightly more.

use bench::plan::RunPlan;
use bench::runner::{self, Args, TcpVariant};
use transport::TransportKind;
use workload::{standard_mix, FlowSizeCdf};

const KINDS: [TransportKind; 2] = [TransportKind::Dctcp, TransportKind::Tcp];
const FG_SHARES: [f64; 2] = [0.05, 0.10];
const KS: [u64; 3] = [400, 500, 600];

fn main() {
    let args = Args::parse();
    let cdf = FlowSizeCdf::web_search();
    let cdf = &cdf;

    let mut plan = RunPlan::new(&args);
    for kind in KINDS {
        for fg in FG_SHARES {
            for k in KS {
                let mut p = args.mix();
                p.fg_fraction = fg;
                plan.scheme(
                    "",
                    move |_s| {
                        let mut cfg = runner::tcp_cfg(&p, kind, TcpVariant::Tlt, false);
                        cfg.switch.color_threshold = Some(k * 1000);
                        cfg
                    },
                    move |s| {
                        let mut mp = p;
                        mp.seed = s;
                        standard_mix(cdf, mp)
                    },
                );
            }
        }
    }
    let mut results = plan.run().into_iter();

    let mut rows = Vec::new();
    runner::print_header(
        "Table 1: important-packet loss rate",
        &["K=400kB", "K=500kB", "K=600kB"],
    );
    for kind in KINDS {
        for fg in FG_SHARES {
            let mut line = format!(
                "{:<28}",
                format!("{}+TLT fg={:.0}%", kind.name(), fg * 100.0)
            );
            let mut row = vec![kind.name().to_string(), format!("{fg:.2}")];
            for _ in KS {
                let r = results.next().expect("one result per scheme");
                line.push_str(&format!("{:>16.3e}", r.important_loss.mean()));
                row.push(format!("{:.3e}", r.important_loss.mean()));
            }
            println!("{line}");
            rows.push(row);
        }
    }
    runner::maybe_csv(
        &args,
        &["transport", "fg_fraction", "k400", "k500", "k600"],
        &rows,
    );
}
