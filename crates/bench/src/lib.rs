//! Benchmark harness for regenerating the TLT paper's tables and figures.
//!
//! Each `fig*`/`tab*` binary reproduces one table or figure of the paper's
//! evaluation (§7 and Appendix B); the shared [`runner`] module provides
//! argument parsing (`--full`, `--quick`, `--seeds N`, `--out file.csv`),
//! the scheme/variant builders, multi-seed execution, and paper-style table
//! printing. DESIGN.md carries the experiment index; EXPERIMENTS.md records
//! paper-vs-measured values.
//!
//! Run any experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p bench --bin fig05_tcp_family
//! cargo run --release -p bench --bin fig05_tcp_family -- --full --seeds 5
//! ```

pub mod runner;
