//! Benchmark harness for regenerating the TLT paper's tables and figures.
//!
//! Each `fig*`/`tab*` binary reproduces one table or figure of the paper's
//! evaluation (§7 and Appendix B); the shared [`runner`] module provides
//! argument parsing (`--full`, `--quick`, `--seeds N`, `--jobs N`,
//! `--out file.csv`), the scheme/variant builders, and paper-style table
//! printing, while [`plan`] executes the (scheme, seed) grid across worker
//! threads with a deterministic fold (output is byte-identical under any
//! `--jobs` value). The [`baseline`] module is the `bench_baseline`
//! binary's workload suite, which records the wall-clock/events-per-second
//! trajectory in `BENCH_pr*.json`; [`benchcmp`] diffs two such reports (or
//! two `tlt-profile/v1` exports) as the cross-run perf-regression gate, and
//! [`profiler`] stamps every artifact with provenance metadata. DESIGN.md
//! carries the experiment index; EXPERIMENTS.md records paper-vs-measured
//! values.
//!
//! Run any experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p bench --bin fig05_tcp_family
//! cargo run --release -p bench --bin fig05_tcp_family -- --full --seeds 5
//! cargo run --release -p bench --bin fig05_tcp_family -- --jobs 8
//! ```

pub mod baseline;
pub mod benchcmp;
pub mod plan;
pub mod profiler;
pub mod runner;
pub mod simprof;
