//! Harness-side profiling plumbing: provenance stamps for exported
//! measurement artifacts, and the wall-clock workload timer behind
//! `bench_baseline`.
//!
//! This file (like `baseline.rs` and `simprof.rs`) is on simlint's D2
//! wall-clock allowlist: the harness layer may read real time, the
//! simulation crates never do.

use std::time::Instant;

use telemetry::{Profile, Registry};

use crate::plan::{PlanOutput, RunPlan};
use crate::runner::Args;
use crate::simprof;

/// Provenance of one measurement artifact: the facts `benchcmp` needs to
/// refuse (or warn about) apples-to-oranges comparisons — a quick-scale
/// debug run diffed against a full-scale release baseline says nothing.
#[derive(Clone, Debug)]
pub struct Provenance {
    /// Cores the host offers.
    pub cores: usize,
    /// Worker count — the literal `"any"` for deterministic artifacts
    /// (metrics/profile exports are byte-identical under every `--jobs`
    /// value, and CI compares them across worker counts), or the actual
    /// count for wall-clock reports.
    pub jobs: String,
    /// Scale label (`quick` / `default` / `full`).
    pub scale: &'static str,
    /// Seeds per scheme.
    pub seeds: u64,
    /// `release` or `debug` — wall-clock numbers from a debug build are
    /// not comparable to release numbers.
    pub build_profile: &'static str,
}

impl Provenance {
    /// The running binary's build profile label.
    pub fn build_profile_label() -> &'static str {
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        }
    }

    /// Provenance for a *deterministic* artifact (a metrics or profile
    /// export): `jobs` is `"any"` by construction.
    pub fn deterministic(args: &Args) -> Provenance {
        Provenance {
            cores: available_cores(),
            jobs: "any".to_string(),
            scale: scale_label(args),
            seeds: args.seeds,
            build_profile: Provenance::build_profile_label(),
        }
    }

    /// Stamps the provenance into a registry's `meta` section. Meta merges
    /// first-wins, so stamping the (empty) global export before any run
    /// folds in pins these values for the whole process.
    pub fn stamp(&self, reg: &mut Registry) {
        reg.set_meta("cores", &self.cores.to_string());
        reg.set_meta("jobs", &self.jobs);
        reg.set_meta("scale", self.scale);
        reg.set_meta("seeds", &self.seeds.to_string());
        reg.set_meta("build_profile", self.build_profile);
    }

    /// Stamps into a profile export (its embedded registry's meta).
    pub fn stamp_profile(&self, p: &mut Profile) {
        self.stamp(&mut p.reg);
    }
}

/// The host's available parallelism (1 when undeterminable).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The scale label (`quick` / `default` / `full`) of an argument set.
pub fn scale_label(args: &Args) -> &'static str {
    if args.full {
        "full"
    } else if args.quick {
        "quick"
    } else {
        "default"
    }
}

/// Measurements of one workload plan at one worker count.
pub(crate) struct Timed {
    pub wall_ms: f64,
    pub out: PlanOutput,
}

/// Runs a plan under a wall-clock (and, with `--features simprof`,
/// scope-profiled) measurement.
pub(crate) fn timed(label: &str, plan: RunPlan<'_>) -> Timed {
    let mut prof = simprof::scope(label.to_string());
    let start = Instant::now();
    let out = plan.run_detailed();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    prof.add_events(out.events_scheduled);
    Timed { wall_ms, out }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_provenance_stamps_jobs_any() {
        let args = Args::parse_from(["--quick", "--jobs", "7"]).unwrap();
        let prov = Provenance::deterministic(&args);
        assert_eq!(prov.jobs, "any", "deterministic artifacts ignore --jobs");
        assert_eq!(prov.scale, "quick");
        let mut reg = Registry::new();
        prov.stamp(&mut reg);
        assert_eq!(reg.meta_get("jobs"), Some("any"));
        assert_eq!(reg.meta_get("scale"), Some("quick"));
        assert!(reg.meta_get("cores").is_some());
        assert!(matches!(
            reg.meta_get("build_profile"),
            Some("debug") | Some("release")
        ));
        // First-wins: merging a different stamp does not overwrite.
        let mut other = Registry::new();
        other.set_meta("scale", "full");
        reg.merge(&other);
        assert_eq!(reg.meta_get("scale"), Some("quick"));
    }
}
