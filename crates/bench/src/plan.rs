//! Parallel execution of (scheme, seed) experiment grids.
//!
//! The paper's evaluation is a grid of *independent* simulations — scheme ×
//! seed × scale — so the harness parallelizes at that granularity instead
//! of inside the (inherently sequential) event loop. A [`RunPlan`]
//! enumerates every (scheme, seed) job up front, executes them across
//! `min(jobs, #jobs)` worker threads via `std::thread::scope`, and folds
//! results back in **deterministic plan order**: per-scheme metrics are
//! accumulated seed-by-seed in enumeration order and flight-recorder
//! buffers are concatenated the same way, so the table, CSV, and trace
//! output is byte-identical under any `--jobs` value.
//!
//! Work distribution is a single shared atomic cursor over the job list —
//! no work stealing, no channels, no dependencies: workers claim the next
//! index until the list is exhausted. Each job traces into its own
//! [`telemetry::BufferSink`] (which is `Send`), so no lock is held while a
//! simulation runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dcsim::{FlowSpec, SimConfig, SimResult};
use eventsim::SimTime;
use telemetry::{Profile, Registry};

use crate::runner::{self, Args, MixOutcome, SchemeResult};

/// One scheme of the grid: a label plus per-seed config/workload builders.
struct SchemeSpec<'a> {
    name: String,
    seeds: u64,
    make_cfg: Box<dyn Fn(u64) -> SimConfig + Sync + 'a>,
    make_flows: Box<dyn Fn(u64) -> Vec<FlowSpec> + Sync + 'a>,
}

/// What one (scheme, seed) job hands back to the fold.
struct JobOut {
    outcome: MixOutcome,
    trace: Option<Vec<u8>>,
    metrics: Option<Registry>,
    profile: Option<Profile>,
    analysis: Option<Registry>,
}

/// Everything a finished plan knows beyond the per-scheme metrics.
pub struct PlanOutput {
    /// Per-scheme cross-seed results, in the order schemes were added.
    pub results: Vec<SchemeResult>,
    /// Concatenated flight-recorder bytes in plan order (empty when tracing
    /// was off). When a global trace file is installed these bytes have
    /// already been appended to it.
    pub trace: Vec<u8>,
    /// Metrics registries of every job, merged in plan order (`None` when
    /// metrics were off). When a global `--metrics` export is installed the
    /// merge has already been folded into it.
    pub metrics: Option<Registry>,
    /// Engine profiles of every job, merged in plan order. `Some` only when
    /// the `profile` feature is compiled in (the engine emits one per run);
    /// byte-identical under any `--jobs` value. When a global
    /// `--profile-out` export is installed the merge has already been
    /// folded into it.
    pub profile: Option<Profile>,
    /// Simulator events scheduled, summed over every job.
    pub events_scheduled: u64,
    /// Number of (scheme, seed) jobs executed.
    pub jobs_run: usize,
    /// Worker threads actually used.
    pub workers: usize,
    /// Per-job analysis registries merged in plan order — `Some` only when
    /// an [`RunPlan::analyze`] hook was installed. Like the other folds,
    /// byte-identical under any `--jobs` value.
    pub analysis: Option<Registry>,
}

/// Per-job analysis hook: `(scheme name, seed, finished run) -> registry
/// fragment`, installed via [`RunPlan::analyze`].
type AnalyzeFn<'a> = dyn Fn(&str, u64, &SimResult) -> Registry + Sync + 'a;

/// A deterministic parallel experiment plan. See the module docs.
pub struct RunPlan<'a> {
    schemes: Vec<SchemeSpec<'a>>,
    jobs: usize,
    default_seeds: u64,
    capture_trace: Option<Option<SimTime>>,
    capture_metrics: bool,
    shadow: bool,
    analyze: Option<Box<AnalyzeFn<'a>>>,
}

impl<'a> RunPlan<'a> {
    /// A plan using the CLI's `--jobs` / `--seeds` settings.
    pub fn new(args: &Args) -> RunPlan<'a> {
        RunPlan::sized(args.effective_jobs(), args.seeds)
    }

    /// A plan with explicit worker and default-seed counts (tests,
    /// benchmarks).
    pub fn sized(jobs: usize, default_seeds: u64) -> RunPlan<'a> {
        assert!(default_seeds >= 1, "a plan needs at least one seed");
        RunPlan {
            schemes: Vec::new(),
            jobs: jobs.max(1),
            default_seeds,
            capture_trace: None,
            capture_metrics: false,
            shadow: false,
            analyze: None,
        }
    }

    /// Forces flight-recorder capture into the returned [`PlanOutput`] even
    /// when no global trace file is installed (`sample_ns` as in
    /// `--trace-sample-ns`). Used by determinism tests.
    pub fn capture_trace(mut self, sample_ns: Option<u64>) -> RunPlan<'a> {
        self.capture_trace = Some(sample_ns.map(SimTime::from_ns));
        self
    }

    /// Forces metrics-registry capture into the returned [`PlanOutput`] even
    /// when no global `--metrics` export is installed. Used by determinism
    /// tests.
    pub fn capture_metrics(mut self) -> RunPlan<'a> {
        self.capture_metrics = true;
        self
    }

    /// Marks this plan as a shadow run: it executes normally and returns a
    /// full [`PlanOutput`], but contributes nothing to the globally
    /// installed `--trace` / `--metrics` / `--profile-out` exports. Used
    /// for cross-check legs (e.g. `bench_baseline`'s parallel re-run) whose
    /// output is compared against a canonical run that already merged —
    /// letting the same leg merge again would make the exports depend on
    /// how many legs the cross-check happened to execute.
    pub fn shadow(mut self) -> RunPlan<'a> {
        self.shadow = true;
        self
    }

    /// Installs a per-job analysis hook, called as `(scheme_name, seed,
    /// &result)` on every finished simulation *before* the raw result is
    /// summarized away. The returned [`Registry`] fragments merge in plan
    /// order into [`PlanOutput::analysis`], so any application-level
    /// accounting built on the raw flow records (e.g. the serve layer's
    /// per-request SLO join) inherits the byte-determinism of the other
    /// folds for free.
    pub fn analyze(
        mut self,
        f: impl Fn(&str, u64, &SimResult) -> Registry + Sync + 'a,
    ) -> RunPlan<'a> {
        self.analyze = Some(Box::new(f));
        self
    }

    /// Adds a scheme over the default seed range. Returns its index into
    /// [`RunPlan::run`]'s result vector (schemes come back in insertion
    /// order).
    pub fn scheme(
        &mut self,
        name: impl Into<String>,
        make_cfg: impl Fn(u64) -> SimConfig + Sync + 'a,
        make_flows: impl Fn(u64) -> Vec<FlowSpec> + Sync + 'a,
    ) -> usize {
        let seeds = self.default_seeds;
        self.scheme_seeds(name, seeds, make_cfg, make_flows)
    }

    /// Adds a scheme with an explicit seed count (some tables average a
    /// different number of runs than the rest of their binary).
    pub fn scheme_seeds(
        &mut self,
        name: impl Into<String>,
        seeds: u64,
        make_cfg: impl Fn(u64) -> SimConfig + Sync + 'a,
        make_flows: impl Fn(u64) -> Vec<FlowSpec> + Sync + 'a,
    ) -> usize {
        assert!(seeds >= 1, "a scheme needs at least one seed");
        self.schemes.push(SchemeSpec {
            name: name.into(),
            seeds,
            make_cfg: Box::new(make_cfg),
            make_flows: Box::new(make_flows),
        });
        self.schemes.len() - 1
    }

    /// Number of schemes added so far.
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// Whether no schemes were added.
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }

    /// Executes the grid and returns per-scheme results in insertion order.
    pub fn run(self) -> Vec<SchemeResult> {
        self.run_detailed().results
    }

    /// Executes the grid and returns results plus trace bytes and work
    /// accounting.
    pub fn run_detailed(self) -> PlanOutput {
        // Tracing: the globally installed `--trace` file wins; a forced
        // capture (tests) applies when no file is installed.
        let global = runner::trace_config();
        let (trace_on, sample_every) = match (global, self.capture_trace) {
            (Some(sample), _) => (true, sample),
            (None, Some(sample)) => (true, sample),
            (None, None) => (false, None),
        };
        let metrics_global = runner::metrics_on();
        let metrics_on = metrics_global || self.capture_metrics;

        let jobs: Vec<(usize, u64)> = self
            .schemes
            .iter()
            .enumerate()
            .flat_map(|(i, s)| (1..=s.seeds).map(move |seed| (i, seed)))
            .collect();
        let workers = self.jobs.min(jobs.len()).max(1);

        let run_job = |&(si, seed): &(usize, u64)| -> JobOut {
            let spec = &self.schemes[si];
            let cfg = (spec.make_cfg)(seed).with_seed(seed);
            let flows = (spec.make_flows)(seed);
            let (mut res, trace) =
                runner::buffered_run(&spec.name, cfg, flows, trace_on, sample_every, metrics_on);
            let metrics = res.metrics.take();
            let profile = res.profile.take();
            let analysis = self.analyze.as_ref().map(|f| f(&spec.name, seed, &res));
            JobOut {
                outcome: MixOutcome::from_result(res),
                trace,
                metrics,
                profile,
                analysis,
            }
        };

        // One slot per job; workers fill slots, the fold below reads them
        // in plan order so the output is independent of completion order.
        let slots: Vec<Mutex<Option<JobOut>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        if workers == 1 {
            for (slot, job) in slots.iter().zip(&jobs) {
                *slot.lock().unwrap() = Some(run_job(job));
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(idx) else { break };
                        let out = run_job(job);
                        *slots[idx].lock().unwrap() = Some(out);
                    });
                }
            });
        }

        // Deterministic fold: seed order within a scheme, scheme order
        // across the plan, trace buffers concatenated likewise.
        let mut results: Vec<SchemeResult> = self
            .schemes
            .iter()
            .map(|s| SchemeResult {
                name: s.name.clone(),
                ..SchemeResult::default()
            })
            .collect();
        let mut trace = Vec::new();
        let mut merged = metrics_on.then(Registry::new);
        let mut profile: Option<Profile> = None;
        let mut analysis = self.analyze.is_some().then(Registry::new);
        let mut events_scheduled = 0u64;
        for (slot, &(si, _seed)) in slots.iter().zip(&jobs) {
            let out = slot.lock().unwrap().take().expect("every job completed");
            events_scheduled += out.outcome.agg.events_scheduled;
            results[si].add(&out.outcome);
            if let Some(b) = &out.trace {
                trace.extend_from_slice(b);
            }
            if let (Some(m), Some(r)) = (&mut merged, &out.metrics) {
                m.merge(r);
            }
            if let Some(p) = &out.profile {
                profile.get_or_insert_with(Profile::new).merge(p);
            }
            if let (Some(a), Some(r)) = (&mut analysis, &out.analysis) {
                a.merge(r);
            }
        }
        if global.is_some() && !self.shadow {
            runner::append_trace(&trace);
        }
        if metrics_global && !self.shadow {
            if let Some(m) = &merged {
                runner::merge_metrics(m);
            }
        }
        if !self.shadow {
            if let Some(p) = &profile {
                runner::merge_profile(p);
            }
        }
        PlanOutput {
            results,
            trace,
            metrics: merged,
            profile,
            events_scheduled,
            jobs_run: jobs.len(),
            workers,
            analysis,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::small_single_switch;
    use transport::TransportKind;

    fn tiny_plan(jobs: usize) -> RunPlan<'static> {
        let mut plan = RunPlan::sized(jobs, 2);
        for (name, tlt) in [("base", false), ("tlt", true)] {
            plan.scheme(
                name,
                move |_s| {
                    let p = workload::MixParams::reduced(1);
                    let cfg = crate::runner::tcp_cfg(
                        &p,
                        TransportKind::Dctcp,
                        if tlt {
                            crate::runner::TcpVariant::Tlt
                        } else {
                            crate::runner::TcpVariant::Baseline
                        },
                        false,
                    );
                    cfg.with_topology(small_single_switch(9))
                },
                |s| workload::incast_burst(16, 8, 8_000, s),
            );
        }
        plan
    }

    #[test]
    fn parallel_fold_matches_sequential() {
        let seq = tiny_plan(1).run_detailed();
        let par = tiny_plan(4).run_detailed();
        assert_eq!(seq.jobs_run, 4);
        assert_eq!(par.jobs_run, 4);
        assert_eq!(seq.events_scheduled, par.events_scheduled);
        assert!(seq.events_scheduled > 0);
        for (a, b) in seq.results.iter().zip(&par.results) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.fg_p99_ms.values(), b.fg_p99_ms.values());
            assert_eq!(a.timeouts_per_1k.values(), b.timeouts_per_1k.values());
            assert_eq!(a.events_scheduled, b.events_scheduled);
        }
    }

    #[test]
    fn captured_traces_are_identical_across_jobs() {
        let seq = tiny_plan(1).capture_trace(None).run_detailed();
        let par = tiny_plan(3).capture_trace(None).run_detailed();
        assert!(!seq.trace.is_empty());
        assert_eq!(seq.trace, par.trace, "trace bytes differ under --jobs");
    }

    #[test]
    fn captured_metrics_are_byte_identical_across_jobs_and_runs() {
        let run = |jobs: usize| {
            tiny_plan(jobs)
                .capture_metrics()
                .run_detailed()
                .metrics
                .expect("metrics captured")
                .to_json()
        };
        let seq = run(1);
        let par = run(4);
        let again = run(4);
        assert!(!seq.is_empty());
        assert!(seq.contains("rto_cause_"), "RTO attribution exported");
        assert!(
            seq.contains("port_queue_bytes/"),
            "queue histograms exported"
        );
        assert_eq!(seq, par, "metrics JSON differs under --jobs");
        assert_eq!(par, again, "metrics JSON differs across identical runs");
    }

    /// The analysis hook sees every (scheme, seed) job's raw result and its
    /// fragments fold byte-identically under any worker count.
    #[test]
    fn analysis_fold_is_byte_identical_across_jobs() {
        let run = |jobs: usize| {
            tiny_plan(jobs)
                .analyze(|name, seed, res| {
                    let mut r = Registry::new();
                    r.inc(&format!("jobs_seen/{name}"), 1);
                    r.inc(&format!("seed_sum/{name}"), seed);
                    r.inc(&format!("flows/{name}"), res.flows.len() as u64);
                    r
                })
                .run_detailed()
                .analysis
                .expect("analyze hook installed")
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.counter("jobs_seen/base"), 2, "one per seed");
        assert_eq!(seq.counter("seed_sum/tlt"), 3, "seeds 1 + 2");
        assert!(seq.counter("flows/base") > 0);
        assert_eq!(
            seq.to_json(),
            par.to_json(),
            "analysis differs under --jobs"
        );
        // Without the hook, the output stays None.
        assert!(tiny_plan(1).run_detailed().analysis.is_none());
    }

    /// The acceptance bar for the engine profiler: the plan-order fold
    /// makes the `tlt-profile/v1` export byte-identical under any worker
    /// count, and the per-kind accounting covers every scheduled event.
    #[test]
    #[cfg(feature = "profile")]
    fn plan_profiles_are_byte_identical_across_jobs_and_account_all_events() {
        let run = |jobs: usize| tiny_plan(jobs).run_detailed();
        let seq = run(1);
        let par = run(4);
        let p = seq.profile.as_ref().expect("profile feature is on");
        // The profiler counts actual queue pushes; `events_scheduled` counts
        // logical schedules (sequence reservations). Lazy timer re-arming
        // keeps superseded deadlines out of the queue entirely, so pushes
        // can only be fewer, never more.
        assert!(
            p.reg.counter("events_scheduled_total") <= seq.events_scheduled,
            "profiler counted more queue pushes than logical schedules"
        );
        assert_eq!(
            p.reg.counter("events_executed_total") + p.reg.counter("events_cancelled_total"),
            p.reg.counter("events_scheduled_total")
        );
        let a = p.to_json();
        let b = par.profile.as_ref().unwrap().to_json();
        assert!(a.contains("tlt-profile/v1"));
        assert!(a.contains("event_sched/deliver"));
        assert_eq!(a, b, "profile JSON differs under --jobs");
        // And it round-trips through its own parser.
        let parsed = Profile::from_json(&a).expect("self-parse");
        assert_eq!(parsed.to_json(), a);
    }

    /// A shadow plan must be a full-fidelity run — identical results,
    /// metrics, and (with the feature on) profile — that merely skips the
    /// global export merges. The skip itself is exercised at the CLI
    /// surface: CI byte-compares `bench_baseline --profile-out` under
    /// `--jobs 1` vs `--jobs 4`, which diverges 2x-vs-1x if the parallel
    /// cross-check leg ever merges again.
    #[test]
    fn shadow_plans_produce_identical_output() {
        let normal = tiny_plan(2).capture_metrics().run_detailed();
        let shadow = tiny_plan(2).capture_metrics().shadow().run_detailed();
        assert_eq!(normal.events_scheduled, shadow.events_scheduled);
        assert_eq!(normal.jobs_run, shadow.jobs_run);
        assert_eq!(
            normal.metrics.as_ref().map(|m| m.to_json()),
            shadow.metrics.as_ref().map(|m| m.to_json()),
            "shadow changed the captured metrics"
        );
        #[cfg(feature = "profile")]
        assert_eq!(
            normal.profile.as_ref().map(|p| p.to_json()),
            shadow.profile.as_ref().map(|p| p.to_json()),
            "shadow changed the captured profile"
        );
    }

    #[test]
    fn captured_metrics_round_trip_and_merge_count_all_jobs() {
        let out = tiny_plan(2).capture_metrics().run_detailed();
        let merged = out.metrics.expect("metrics captured");
        let parsed = Registry::from_json(&merged.to_json()).expect("self-parse");
        assert_eq!(parsed, merged, "JSON round trip is lossless");
        // The merged registry sums every (scheme, seed) job: RTO counts
        // across all jobs equal the plan's per-scheme totals.
        let total: u64 = out
            .results
            .iter()
            .map(|r| r.timeouts_total.values().iter().sum::<f64>() as u64)
            .sum();
        assert_eq!(merged.counter("timeouts"), total);
        assert!(merged.counter("data_pkts_sent") > 0);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_rejected() {
        let _ = RunPlan::sized(1, 0);
    }
}
