//! Cross-run performance comparison: diffs two measurement artifacts.
//!
//! `benchcmp` reads two JSON files of the *same* schema —
//! `tlt-bench-baseline/v1` (wall-clock suite reports), `tlt-profile/v1`
//! (engine profiles), `tlt-metrics/v1` (metrics registries), or
//! `tlt-serve/v1` (per-request SLO reports) — flattens
//! each into a key → number map, and reports per-key deltas:
//!
//! * **lower-is-better** keys (anything containing `wall_ms`) and
//!   **higher-is-better** keys (`events_per_sec`, `speedup`) are graded
//!   against a regression threshold,
//! * everything else (event counts, queue depths, ...) is informational —
//!   a count change is a behavior diff to investigate, not a perf verdict.
//!
//! Provenance metadata guards against apples-to-oranges comparisons: a
//! `scale`, `build_profile`, or `seeds` value present in *both* files but
//! different is a refusal (exit 2 unless `--force`); a value missing from
//! one side (older artifacts predate the stamps) only warns, and differing
//! `cores` warns because wall-clock numbers from different hosts are
//! suggestive at best.
//!
//! The comparison itself never exits non-zero on a regression — CI runs it
//! informationally — unless `--fail-on-regression` turns the grade into a
//! gate.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A minimal JSON value, parsed by [`Value::parse`]. The repo is std-only,
/// so `benchcmp` carries its own reader; unlike the registry parser this
/// one accepts *any* well-formed document (floats, nesting, arrays) since
/// the bench-baseline schema carries fractional milliseconds.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Json {
            b: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.i < p.b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Json<'a> {
    b: &'a [u8],
    i: usize,
}

impl Json<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn fail(&self, what: &str) -> String {
        if self.i >= self.b.len() {
            format!("{what} (unexpected end of input)")
        } else {
            format!("{what} at byte {}", self.i)
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.fail("unrecognized literal"))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.fail("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        if self.b.get(self.i) != Some(&b'"') {
            return Err(self.fail("expected a string"));
        }
        self.i += 1;
        let mut s = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            // \uXXXX — decoded losslessly for the BMP,
                            // which is all the harness ever emits.
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.fail("malformed \\u escape"))?;
                            s.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.i += 4;
                        }
                        _ => return Err(self.fail("unsupported escape")),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through byte-wise.
                    let len = match c {
                        _ if c < 0x80 => 1,
                        _ if c >> 5 == 0b110 => 2,
                        _ if c >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .b
                        .get(self.i..self.i + len)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| self.fail("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.i += len;
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.i += 1; // '{'
        let mut m = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            if self.b.get(self.i) != Some(&b':') {
                return Err(self.fail("expected ':'"));
            }
            self.i += 1;
            m.push((k, self.value()?));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.i += 1; // '['
        let mut a = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Arr(a));
        }
        loop {
            a.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(a));
                }
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }
}

/// One artifact flattened for comparison.
#[derive(Debug)]
pub struct Doc {
    /// The schema tag (`tlt-bench-baseline/v1`, `tlt-profile/v1`, ...).
    pub schema: String,
    /// Provenance strings (`scale`, `build_profile`, `cores`, ...).
    pub meta: BTreeMap<String, String>,
    /// Every comparable number, keyed hierarchically
    /// (`workload/incast_micro/wall_ms_jobs1`, `counter/event_exec/deliver`).
    pub nums: BTreeMap<String, f64>,
}

/// Parses and flattens one artifact.
pub fn load(text: &str) -> Result<Doc, String> {
    let v = Value::parse(text)?;
    let schema = v
        .get("schema")
        .and_then(Value::str)
        .ok_or("missing \"schema\" key")?
        .to_string();
    let mut doc = Doc {
        schema: schema.clone(),
        meta: BTreeMap::new(),
        nums: BTreeMap::new(),
    };
    match schema.as_str() {
        "tlt-bench-baseline/v1" => flatten_bench(&v, &mut doc),
        // `tlt-spans/v1` embeds a registry body (phase hists + span counters)
        // next to its span-tree array; the registry part flattens like any
        // other export and the trees are ignored — spans keys are
        // informational, never graded (see `direction`).
        "tlt-profile/v1" | "tlt-metrics/v1" | "tlt-serve/v1" | "tlt-spans/v1" => {
            flatten_registry(&v, &mut doc)
        }
        other => return Err(format!("unsupported schema {other:?}")),
    }
    Ok(doc)
}

fn flatten_bench(v: &Value, doc: &mut Doc) {
    for key in ["scale", "build_profile", "generated_by"] {
        if let Some(s) = v.get(key).and_then(Value::str) {
            doc.meta.insert(key.to_string(), s.to_string());
        }
    }
    for key in ["cores", "jobs", "seeds"] {
        if let Some(n) = v.get(key).and_then(Value::num) {
            doc.meta.insert(key.to_string(), trim_num(n));
            doc.nums.insert(key.to_string(), n);
        }
    }
    if let Some(Value::Arr(ws)) = v.get("workloads") {
        for w in ws {
            let Some(name) = w.get("name").and_then(Value::str) else {
                continue;
            };
            if let Value::Obj(fields) = w {
                for (k, fv) in fields {
                    if let Some(n) = fv.num() {
                        doc.nums.insert(format!("workload/{name}/{k}"), n);
                    }
                }
            }
        }
    }
    if let Some(Value::Arr(ps)) = v.get("phases") {
        for p in ps {
            let Some(label) = p.get("phase").and_then(Value::str) else {
                continue;
            };
            if let Value::Obj(fields) = p {
                for (k, fv) in fields {
                    if let Some(n) = fv.num() {
                        doc.nums.insert(format!("phase/{label}/{k}"), n);
                    }
                }
            }
        }
    }
    if let Some(Value::Obj(fields)) = v.get("total") {
        for (k, fv) in fields {
            if let Some(n) = fv.num() {
                doc.nums.insert(format!("total/{k}"), n);
            }
        }
    }
}

fn flatten_registry(v: &Value, doc: &mut Doc) {
    if let Some(Value::Obj(m)) = v.get("meta") {
        for (k, mv) in m {
            if let Some(s) = mv.str() {
                doc.meta.insert(k.clone(), s.to_string());
            }
        }
    }
    for (section, prefix) in [("counters", "counter"), ("gauges", "gauge")] {
        if let Some(Value::Obj(m)) = v.get(section) {
            for (k, mv) in m {
                if let Some(n) = mv.num() {
                    doc.nums.insert(format!("{prefix}/{k}"), n);
                }
            }
        }
    }
    if let Some(Value::Obj(hists)) = v.get("hists") {
        for (k, h) in hists {
            for field in ["count", "sum", "max"] {
                if let Some(n) = h.get(field).and_then(Value::num) {
                    doc.nums.insert(format!("hist/{k}/{field}"), n);
                }
            }
        }
    }
    if let Some(Value::Obj(series)) = v.get("series") {
        for (k, ts) in series {
            let (mut sum, mut count) = (0.0f64, 0.0f64);
            if let Some(Value::Arr(buckets)) = ts.get("buckets") {
                for b in buckets {
                    if let Value::Arr(cols) = b {
                        // [index, sum, count, max]
                        sum += cols.get(1).and_then(Value::num).unwrap_or(0.0);
                        count += cols.get(2).and_then(Value::num).unwrap_or(0.0);
                    }
                }
            }
            doc.nums.insert(format!("series/{k}/sum"), sum);
            doc.nums.insert(format!("series/{k}/count"), count);
        }
    }
}

fn trim_num(n: f64) -> String {
    if n.fract() == 0.0 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// How a key's delta is graded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Wall time: an increase is a regression.
    LowerIsBetter,
    /// Throughput: a decrease is a regression.
    HigherIsBetter,
    /// Counts and sizes: reported, never graded.
    Informational,
}

/// Grades a flattened key by name.
pub fn direction(key: &str) -> Direction {
    if key.contains("wall_ms") {
        Direction::LowerIsBetter
    } else if key.contains("events_per_sec") || key.ends_with("/speedup") {
        Direction::HigherIsBetter
    } else {
        Direction::Informational
    }
}

/// One key's before/after pair.
#[derive(Debug)]
pub struct Delta {
    /// Flattened key.
    pub key: String,
    /// Value in the old artifact.
    pub old: f64,
    /// Value in the new artifact.
    pub new: f64,
    /// Percent change relative to `old` (`None` when `old == 0`).
    pub pct: Option<f64>,
    /// Grading class.
    pub dir: Direction,
    /// Whether this delta crossed the threshold in the bad direction.
    pub regression: bool,
}

/// The full comparison of two artifacts.
#[derive(Debug)]
pub struct Comparison {
    /// Per-key deltas for keys present in both files, document order.
    pub deltas: Vec<Delta>,
    /// Keys only the old file has (removed measurements).
    pub only_old: Vec<String>,
    /// Keys only the new file has (added measurements).
    pub only_new: Vec<String>,
    /// Non-fatal provenance notes.
    pub warnings: Vec<String>,
    /// A fatal provenance mismatch; comparing anyway needs `--force`.
    pub refusal: Option<String>,
    /// The regression threshold used (percent).
    pub threshold_pct: f64,
}

impl Comparison {
    /// Graded keys that crossed the threshold in the bad direction.
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas.iter().filter(|d| d.regression)
    }

    /// Graded keys that moved past the threshold in the *good* direction.
    pub fn improvements(&self) -> impl Iterator<Item = &Delta> {
        self.deltas.iter().filter(|d| {
            !d.regression
                && d.dir != Direction::Informational
                && d.pct.is_some_and(|p| p.abs() >= self.threshold_pct)
        })
    }

    /// Renders the human-readable delta table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for w in &self.warnings {
            let _ = writeln!(s, "warning: {w}");
        }
        let _ = writeln!(
            s,
            "{:<52}{:>14}{:>14}{:>9}  grade",
            "key", "old", "new", "delta"
        );
        for d in &self.deltas {
            // Informational keys only earn a row when they changed; graded
            // keys always print so the table shape is stable.
            if d.dir == Direction::Informational && d.old == d.new {
                continue;
            }
            let pct = match d.pct {
                Some(p) => format!("{p:+.1}%"),
                None => "n/a".to_string(),
            };
            let grade = match (d.dir, d.regression) {
                (Direction::Informational, _) => "info",
                (_, true) => "REGRESSION",
                (_, false) => "ok",
            };
            let _ = writeln!(
                s,
                "{:<52}{:>14.3}{:>14.3}{:>9}  {}",
                d.key, d.old, d.new, pct, grade
            );
        }
        if !self.only_old.is_empty() {
            let _ = writeln!(s, "only in old: {}", self.only_old.join(", "));
        }
        if !self.only_new.is_empty() {
            let _ = writeln!(s, "only in new: {}", self.only_new.join(", "));
        }
        let regs = self.regressions().count();
        let imps = self.improvements().count();
        let _ = writeln!(
            s,
            "{} keys compared, {} regression(s), {} improvement(s) beyond ±{}%",
            self.deltas.len(),
            regs,
            imps,
            self.threshold_pct
        );
        s
    }

    /// Machine-readable summary (`--json`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": \"tlt-benchcmp/v1\",\n");
        let _ = writeln!(s, "  \"threshold_pct\": {},", self.threshold_pct);
        let _ = writeln!(s, "  \"regressions\": {},", self.regressions().count());
        let _ = writeln!(s, "  \"improvements\": {},", self.improvements().count());
        s.push_str("  \"deltas\": [\n");
        for (i, d) in self.deltas.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"key\": \"{}\", \"old\": {}, \"new\": {}, \"pct\": {}, \
                 \"regression\": {}}}",
                d.key,
                d.old,
                d.new,
                d.pct.map_or("null".to_string(), |p| format!("{p:.4}")),
                d.regression
            );
            s.push_str(if i + 1 < self.deltas.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Provenance keys that make two artifacts incomparable when they differ.
const STRICT_META: [&str; 4] = ["scale", "build_profile", "seeds", "schema"];

/// Compares two flattened artifacts. `threshold_pct` grades directional
/// keys; provenance mismatches populate `refusal`/`warnings` (the caller
/// decides whether `--force` overrides a refusal).
pub fn compare(old: &Doc, new: &Doc, threshold_pct: f64) -> Comparison {
    let mut warnings = Vec::new();
    let mut refusals = Vec::new();
    if old.schema != new.schema {
        refusals.push(format!(
            "schema mismatch: old is {:?}, new is {:?}",
            old.schema, new.schema
        ));
    }
    for key in STRICT_META {
        if key == "schema" {
            continue;
        }
        match (old.meta.get(key), new.meta.get(key)) {
            (Some(a), Some(b)) if a != b => {
                refusals.push(format!("{key} mismatch: old is {a:?}, new is {b:?}"));
            }
            (None, Some(_)) | (Some(_), None) => warnings.push(format!(
                "{key} provenance missing from one side; comparability unverified"
            )),
            _ => {}
        }
    }
    if let (Some(a), Some(b)) = (old.meta.get("cores"), new.meta.get("cores")) {
        if a != b {
            warnings.push(format!(
                "cores differ (old {a}, new {b}); wall-clock deltas are host-dependent"
            ));
        }
    }

    let mut deltas = Vec::new();
    let mut only_old = Vec::new();
    let mut only_new: Vec<String> = new
        .nums
        .keys()
        .filter(|k| !old.nums.contains_key(*k))
        .cloned()
        .collect();
    only_new.sort();
    for (key, &o) in &old.nums {
        let Some(&n) = new.nums.get(key) else {
            only_old.push(key.clone());
            continue;
        };
        let dir = direction(key);
        let pct = (o != 0.0).then(|| (n - o) / o * 100.0);
        let regression = match (dir, pct) {
            (Direction::LowerIsBetter, Some(p)) => p > threshold_pct,
            (Direction::HigherIsBetter, Some(p)) => p < -threshold_pct,
            _ => false,
        };
        deltas.push(Delta {
            key: key.clone(),
            old: o,
            new: n,
            pct,
            dir,
            regression,
        });
    }
    Comparison {
        deltas,
        only_old,
        only_new,
        warnings,
        refusal: if refusals.is_empty() {
            None
        } else {
            Some(refusals.join("; "))
        },
        threshold_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_json(wall: f64, build: Option<&str>, scale: &str) -> String {
        let build_line = build
            .map(|b| format!("  \"build_profile\": \"{b}\",\n"))
            .unwrap_or_default();
        format!(
            "{{\n  \"schema\": \"tlt-bench-baseline/v1\",\n  \"generated_by\": \"bench_baseline\",\n\
             \x20 \"cores\": 8,\n  \"jobs\": 8,\n  \"scale\": \"{scale}\",\n  \"seeds\": 3,\n{build_line}\
             \x20 \"workloads\": [\n    {{\"name\": \"incast_micro\", \"schemes\": 4, \"jobs_run\": 4, \
             \"wall_ms_jobs1\": {wall:.3}, \"wall_ms_jobsn\": {:.3}, \"speedup\": 2.000, \
             \"events_scheduled\": 1000, \"events_per_sec_jobs1\": 100, \"events_per_sec_jobsn\": 200, \
             \"deterministic\": true}}\n  ],\n  \"simprof\": false,\n\
             \x20 \"total\": {{\"wall_ms_jobs1\": {wall:.3}, \"wall_ms_jobsn\": {:.3}, \
             \"speedup\": 2.000, \"deterministic\": true}}\n}}\n",
            wall / 2.0,
            wall / 2.0,
        )
    }

    #[test]
    fn parses_and_flattens_bench_baseline() {
        let doc = load(&bench_json(100.0, Some("release"), "quick")).unwrap();
        assert_eq!(doc.schema, "tlt-bench-baseline/v1");
        assert_eq!(doc.meta.get("scale").map(String::as_str), Some("quick"));
        assert_eq!(doc.nums["workload/incast_micro/wall_ms_jobs1"], 100.0);
        assert_eq!(doc.nums["total/speedup"], 2.0);
    }

    #[test]
    fn parses_and_flattens_profile() {
        let mut p = telemetry::Profile::new();
        p.reg.inc("event_exec/deliver", 42);
        p.reg.gauge_max("queue_peak_depth", 7);
        p.reg.observe("queue_depth", 3);
        p.reg.set_meta("scale", "quick");
        p.series_mut("events").record(eventsim::SimTime::ZERO, 5);
        let doc = load(&p.to_json()).unwrap();
        assert_eq!(doc.schema, "tlt-profile/v1");
        assert_eq!(doc.nums["counter/event_exec/deliver"], 42.0);
        assert_eq!(doc.nums["gauge/queue_peak_depth"], 7.0);
        assert_eq!(doc.nums["hist/queue_depth/count"], 1.0);
        assert_eq!(doc.nums["series/events/sum"], 5.0);
        assert_eq!(doc.meta.get("scale").map(String::as_str), Some("quick"));
    }

    #[test]
    fn parses_and_flattens_serve_report() {
        let mut r = telemetry::ServeReport::new();
        r.reg.inc("serve_requests/dctcp", 200);
        r.reg.inc("serve_slo_viol_timeout/dctcp", 3);
        r.reg.observe("serve_req_latency_ns/dctcp", 800_000);
        r.reg.set_meta("scale", "k8");
        let doc = load(&r.to_json()).unwrap();
        assert_eq!(doc.schema, "tlt-serve/v1");
        assert_eq!(doc.nums["counter/serve_requests/dctcp"], 200.0);
        assert_eq!(doc.nums["counter/serve_slo_viol_timeout/dctcp"], 3.0);
        assert_eq!(doc.nums["hist/serve_req_latency_ns/dctcp/count"], 1.0);
        assert_eq!(doc.meta.get("scale").map(String::as_str), Some("k8"));
    }

    #[test]
    fn parses_and_flattens_spans_report_as_informational() {
        let mut rep = telemetry::SpanReport::new();
        let mut phases = telemetry::PhaseTimes::default();
        phases.add(telemetry::Phase::Serialization, 64_000);
        phases.add(telemetry::Phase::RtoStall, 4_000_000);
        rep.record_flow("dctcp+tlt", &phases, phases.total(), 0);
        rep.record_violation("dctcp+tlt", telemetry::Phase::RtoStall);
        rep.reg.set_meta("scale", "k8");
        let doc = load(&rep.to_json()).unwrap();
        assert_eq!(doc.schema, "tlt-spans/v1");
        assert_eq!(doc.nums["counter/span_flows/dctcp+tlt"], 1.0);
        assert_eq!(
            doc.nums["hist/span_phase_ns/dctcp+tlt/rto_stall/sum"],
            4_000_000.0
        );
        assert_eq!(doc.nums["hist/span_fct_ns/dctcp+tlt/count"], 1.0);
        assert_eq!(
            doc.nums["counter/serve_viol_phase/dctcp+tlt/rto_stall"],
            1.0
        );
        assert_eq!(doc.meta.get("scale").map(String::as_str), Some("k8"));
        // Spans keys are reported, never graded: a 10x phase-time shift in
        // the new report must not trip --fail-on-regression.
        let mut worse = telemetry::SpanReport::new();
        let mut slow = telemetry::PhaseTimes::default();
        slow.add(telemetry::Phase::Serialization, 640_000);
        slow.add(telemetry::Phase::RtoStall, 40_000_000);
        worse.record_flow("dctcp+tlt", &slow, slow.total(), 0);
        worse.record_violation("dctcp+tlt", telemetry::Phase::RtoStall);
        worse.reg.set_meta("scale", "k8");
        let cmp = compare(&doc, &load(&worse.to_json()).unwrap(), 10.0);
        assert!(cmp.refusal.is_none());
        assert_eq!(cmp.regressions().count(), 0, "spans keys are informational");
    }

    #[test]
    fn grades_wall_regressions_and_throughput_gains() {
        let old = load(&bench_json(100.0, Some("release"), "quick")).unwrap();
        let new = load(&bench_json(150.0, Some("release"), "quick")).unwrap();
        let cmp = compare(&old, &new, 10.0);
        assert!(cmp.refusal.is_none());
        let wall = cmp
            .deltas
            .iter()
            .find(|d| d.key == "workload/incast_micro/wall_ms_jobs1")
            .unwrap();
        assert_eq!(wall.dir, Direction::LowerIsBetter);
        assert!(wall.regression, "+50% wall beyond a 10% threshold");
        assert!(cmp.regressions().count() >= 1);
        // Identical files: clean.
        let same = compare(&old, &old, 10.0);
        assert_eq!(same.regressions().count(), 0);
        assert!(same.render().contains("0 regression(s)"));
    }

    #[test]
    fn provenance_mismatch_refuses_and_missing_only_warns() {
        let release = load(&bench_json(100.0, Some("release"), "quick")).unwrap();
        let debug = load(&bench_json(100.0, Some("debug"), "quick")).unwrap();
        let cmp = compare(&release, &debug, 5.0);
        assert!(cmp.refusal.as_deref().unwrap().contains("build_profile"));

        // PR-2-era files predate the build_profile stamp: warn, don't refuse.
        let unstamped = load(&bench_json(100.0, None, "quick")).unwrap();
        let cmp = compare(&unstamped, &release, 5.0);
        assert!(cmp.refusal.is_none());
        assert!(cmp.warnings.iter().any(|w| w.contains("build_profile")));

        let full = load(&bench_json(100.0, Some("release"), "full")).unwrap();
        let cmp = compare(&release, &full, 5.0);
        assert!(cmp.refusal.as_deref().unwrap().contains("scale"));
    }

    #[test]
    fn rejects_malformed_and_unknown_documents() {
        assert!(load("").is_err());
        assert!(load("{").is_err());
        assert!(load("{\"schema\": \"wat/v9\"}")
            .unwrap_err()
            .contains("wat"));
        assert!(load("{\"cores\": 4}").unwrap_err().contains("schema"));
        let good = bench_json(100.0, Some("release"), "quick");
        assert!(load(&format!("{good}garbage"))
            .unwrap_err()
            .contains("trailing"));
        // Every truncation of a valid document fails cleanly, never panics.
        for cut in 0..good.len() {
            let _ = load(&good[..cut]);
        }
    }

    #[test]
    fn json_value_parser_handles_escapes_and_nesting() {
        let v = Value::parse(r#"{"a": [1, -2.5, 1e3], "b": "x\n\"yA", "c": null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Value::Arr(vec![Value::Num(1.0), Value::Num(-2.5), Value::Num(1000.0)])
        );
        assert_eq!(v.get("b").and_then(Value::str), Some("x\n\"yA"));
        assert_eq!(v.get("c"), Some(&Value::Null));
    }
}
