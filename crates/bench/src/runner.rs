//! Shared experiment plumbing: CLI arguments, scheme variants, multi-seed
//! execution, flight-recorder wiring, and table printing.

use std::cell::RefCell;
use std::fs::File;
use std::io::BufWriter;
use std::rc::Rc;

use dcsim::{Engine, FlowSpec, SimConfig, SimResult};
use eventsim::SimTime;
use netsim::topology::TopologySpec;
use netsim::LinkSpec;
use netstats::{summarize_flows, FctSummary, Metric};
use telemetry::{JsonlSink, TraceEvent, Tracer};
use transport::{RtoMode, TransportKind};
use workload::MixParams;

/// Command-line options common to every experiment binary.
#[derive(Clone, Debug)]
pub struct Args {
    /// Paper-scale parameters (96 hosts, 10 k background flows). Slow.
    pub full: bool,
    /// Smallest credible scale, for smoke runs.
    pub quick: bool,
    /// Number of seeds to average over.
    pub seeds: u64,
    /// Optional CSV output path.
    pub out: Option<String>,
    /// Optional flight-recorder JSONL output path.
    pub trace: Option<String>,
    /// Per-port telemetry sampling period in nanoseconds (with `--trace`).
    pub trace_sample_ns: Option<u64>,
}

impl Args {
    /// Parses `std::env::args()`. Unknown flags abort with usage help.
    ///
    /// When `--trace` is given, every simulation the binary subsequently
    /// runs through [`run_scheme`] / [`traced_run`] appends its events to
    /// the named JSONL file (created fresh at startup).
    pub fn parse() -> Args {
        let mut args = Args {
            full: false,
            quick: false,
            seeds: 3,
            out: None,
            trace: None,
            trace_sample_ns: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => args.full = true,
                "--quick" => args.quick = true,
                "--seeds" => {
                    args.seeds = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seeds needs a number"));
                }
                "--out" => {
                    args.out = Some(it.next().unwrap_or_else(|| usage("--out needs a path")));
                }
                "--trace" => {
                    args.trace = Some(it.next().unwrap_or_else(|| usage("--trace needs a path")));
                }
                "--trace-sample-ns" => {
                    args.trace_sample_ns = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage("--trace-sample-ns needs a number")),
                    );
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        if args.quick {
            args.seeds = args.seeds.min(1);
        }
        if let Some(path) = &args.trace {
            init_trace(path, args.trace_sample_ns);
        }
        args
    }

    /// The standard-mix parameters for this scale.
    pub fn mix(&self) -> MixParams {
        if self.full {
            MixParams::paper()
        } else if self.quick {
            MixParams::reduced(100)
        } else {
            MixParams::reduced(400)
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <experiment> [--full] [--quick] [--seeds N] [--out file.csv] \
         [--trace file.jsonl] [--trace-sample-ns N]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

/// Process-wide flight-recorder state installed by [`init_trace`].
struct TraceState {
    sink: Rc<RefCell<JsonlSink<BufWriter<File>>>>,
    sample_every: Option<SimTime>,
}

thread_local! {
    static TRACE: RefCell<Option<TraceState>> = const { RefCell::new(None) };
}

/// Opens (truncating) the JSONL flight-recorder file at `path` and routes
/// every subsequent [`traced_run`] / [`run_scheme`] simulation through it.
/// `sample_ns`, when set, enables per-port `port_sample` telemetry at that
/// period for configs that do not already request their own.
///
/// [`Args::parse`] calls this when `--trace` is present; experiments with
/// bespoke main loops may also call it directly.
pub fn init_trace(path: &str, sample_ns: Option<u64>) {
    let file = File::create(path)
        .unwrap_or_else(|e| usage(&format!("cannot create trace file {path}: {e}")));
    let sink = Rc::new(RefCell::new(JsonlSink::new(BufWriter::new(file))));
    TRACE.with(|t| {
        *t.borrow_mut() = Some(TraceState {
            sink,
            sample_every: sample_ns.map(SimTime::from_ns),
        });
    });
}

/// Runs one simulation, recording it to the flight recorder when one is
/// installed ([`init_trace`]). Each run is bracketed by `run_start` (with
/// `label` and the config's seed) and `run_end` (with the producer's own
/// aggregate totals), making the trace self-verifying for `trace_inspect`.
pub fn traced_run(label: &str, mut cfg: SimConfig, flows: Vec<FlowSpec>) -> SimResult {
    let state = TRACE.with(|t| {
        t.borrow()
            .as_ref()
            .map(|s| (s.sink.clone(), s.sample_every))
    });
    let Some((sink, sample_every)) = state else {
        return Engine::new(cfg, flows).run();
    };
    if cfg.trace_sample_every.is_none() {
        cfg.trace_sample_every = sample_every;
    }
    let seed = cfg.seed;
    let tracer = Tracer::from_shared(sink);
    tracer.emit(SimTime::ZERO, || TraceEvent::RunStart {
        label: label.to_string(),
        seed,
    });
    let mut eng = Engine::new(cfg, flows);
    eng.set_tracer(tracer.clone());
    let res = eng.run();
    tracer.emit(res.agg.duration, || TraceEvent::RunEnd {
        drops_color: res.agg.drops_color,
        drops_dt: res.agg.drops_dt,
        drops_overflow: res.agg.drops_overflow,
        wire_drops: res.agg.wire_drops,
        pause_frames: res.agg.pause_frames,
        timeouts: res.agg.timeouts,
    });
    tracer.flush();
    res
}

/// The leaf–spine topology matching a [`MixParams`] instance, with the
/// paper's per-family link latency (10 μs TCP, 1 μs RoCE).
pub fn mix_topology(p: &MixParams, roce: bool) -> TopologySpec {
    let delay = if roce {
        SimTime::from_us(1)
    } else {
        SimTime::from_us(10)
    };
    let link = LinkSpec::new(p.link_bw_bps, delay);
    TopologySpec::LeafSpine {
        cores: p.cores,
        tors: p.tors,
        hosts_per_tor: p.hosts / p.tors,
        host_link: link,
        fabric_link: link,
    }
}

/// Loss-recovery variants of the TCP family compared in Figures 5/7/15.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcpVariant {
    /// 4 ms RTO_min (Linux default).
    Baseline,
    /// Baseline plus Tail Loss Probe.
    Tlp,
    /// 200 μs RTO_min (high-resolution timers \[54\]).
    Us200,
    /// TLT.
    Tlt,
}

impl TcpVariant {
    /// All four, in the paper's presentation order.
    pub const ALL: [TcpVariant; 4] = [
        TcpVariant::Baseline,
        TcpVariant::Tlp,
        TcpVariant::Us200,
        TcpVariant::Tlt,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            TcpVariant::Baseline => "base",
            TcpVariant::Tlp => "+TLP",
            TcpVariant::Us200 => "200us",
            TcpVariant::Tlt => "+TLT",
        }
    }
}

/// Builds a TCP-family config for `kind` under `variant`, scaled to the
/// mix's topology.
pub fn tcp_cfg(p: &MixParams, kind: TransportKind, variant: TcpVariant, pfc: bool) -> SimConfig {
    let mut cfg = SimConfig::tcp_family(kind).with_topology(mix_topology(p, false));
    match variant {
        TcpVariant::Baseline => {}
        TcpVariant::Tlp => cfg.tlp = true,
        TcpVariant::Us200 => {
            cfg.rto = RtoMode::microsecond();
        }
        TcpVariant::Tlt => cfg = cfg.with_tlt(),
    }
    if pfc {
        cfg = cfg.with_pfc();
    }
    cfg
}

/// Builds a RoCE-family config, optionally with TLT and/or PFC.
pub fn roce_cfg(p: &MixParams, kind: TransportKind, tlt: bool, pfc: bool) -> SimConfig {
    let mut cfg = SimConfig::roce_family(kind).with_topology(mix_topology(p, true));
    if tlt {
        cfg = cfg.with_tlt();
    }
    if pfc {
        cfg = cfg.with_pfc();
    }
    cfg
}

/// The outcome of one simulation, pre-summarized.
pub struct MixOutcome {
    /// Foreground-flow FCT summary.
    pub fg: FctSummary,
    /// Background-flow FCT summary.
    pub bg: FctSummary,
    /// Engine aggregates.
    pub agg: dcsim::AggregateStats,
}

/// Runs one simulation (through the flight recorder when installed) and
/// summarizes it.
pub fn run_once(label: &str, cfg: SimConfig, flows: Vec<FlowSpec>) -> MixOutcome {
    let res = traced_run(label, cfg, flows);
    MixOutcome {
        fg: summarize_flows(res.flows.iter(), |f| f.fg),
        bg: summarize_flows(res.flows.iter(), |f| !f.fg),
        agg: res.agg,
    }
}

/// Cross-seed metrics of one scheme (one bar/line of a figure).
#[derive(Clone, Debug, Default)]
pub struct SchemeResult {
    /// Scheme label.
    pub name: String,
    /// Foreground 99.9th-percentile FCT (ms).
    pub fg_p999_ms: Metric,
    /// Foreground 99th-percentile FCT (ms).
    pub fg_p99_ms: Metric,
    /// Background average FCT (ms).
    pub bg_avg_ms: Metric,
    /// Background goodput (Gbps).
    pub bg_goodput_gbps: Metric,
    /// Timeouts per 1 k flows (all flows).
    pub timeouts_per_1k: Metric,
    /// PFC PAUSE frames per 1 k flows.
    pub pause_per_1k: Metric,
    /// Mean fraction of time a (paused-at-least-once) link was paused.
    pub pause_frac: Metric,
    /// Fraction of data packets marked important.
    pub important_frac: Metric,
    /// Important-packet loss rate at switches.
    pub important_loss: Metric,
    /// Payload bytes injected by important ACK-clocking.
    pub clocking_kb: Metric,
    /// Largest egress queue observed (kB).
    pub max_queue_kb: Metric,
    /// Median of the sampled deepest-queue series (kB).
    pub median_queue_kb: Metric,
}

impl SchemeResult {
    /// Folds one run's outcome in.
    pub fn add(&mut self, o: &MixOutcome) {
        let total_flows = (o.fg.count + o.bg.count).max(1) as f64;
        self.fg_p999_ms.add(o.fg.p999 * 1e3);
        self.fg_p99_ms.add(o.fg.p99 * 1e3);
        self.bg_avg_ms.add(o.bg.avg * 1e3);
        self.bg_goodput_gbps.add(o.bg.goodput_bps / 1e9);
        self.timeouts_per_1k
            .add(o.agg.timeouts as f64 * 1000.0 / total_flows);
        self.pause_per_1k
            .add(o.agg.pause_frames as f64 * 1000.0 / total_flows);
        self.pause_frac.add(o.agg.link_pause_fraction);
        self.important_frac.add(o.agg.important_fraction());
        self.important_loss.add(o.agg.important_loss_rate());
        self.clocking_kb.add(o.agg.clocking_bytes as f64 / 1e3);
        self.max_queue_kb.add(o.agg.max_queue_bytes as f64 / 1e3);
        let mut qs = o.agg.queue_samples.clone();
        self.median_queue_kb.add(qs.percentile(50.0) / 1e3);
    }
}

/// Runs `scheme` over `seeds` seeds of the standard mix and aggregates.
pub fn run_scheme(
    name: impl Into<String>,
    seeds: u64,
    make_cfg: impl Fn(u64) -> SimConfig,
    make_flows: impl Fn(u64) -> Vec<FlowSpec>,
) -> SchemeResult {
    let mut r = SchemeResult {
        name: name.into(),
        ..SchemeResult::default()
    };
    for seed in 1..=seeds {
        let o = run_once(&r.name, make_cfg(seed).with_seed(seed), make_flows(seed));
        r.add(&o);
    }
    r
}

/// Prints a header line for a paper-style table.
pub fn print_header(title: &str, cols: &[&str]) {
    println!("\n== {title} ==");
    print!("{:<28}", "scheme");
    for c in cols {
        print!("{c:>16}");
    }
    println!();
}

/// Prints one row, `mean ±std` per metric.
pub fn print_row(name: &str, metrics: &[&Metric]) {
    print!("{name:<28}");
    for m in metrics {
        print!("{:>10.3}±{:<5.3}", m.mean(), m.std());
    }
    println!();
}

/// Writes scheme rows to CSV if `--out` was given.
pub fn maybe_csv(args: &Args, headers: &[&str], rows: &[Vec<String>]) {
    if let Some(path) = &args.out {
        netstats::write_csv(path, headers, rows).expect("write csv");
        eprintln!("wrote {path}");
    }
}
