//! Shared experiment plumbing: CLI arguments, scheme variants, multi-seed
//! execution, flight-recorder wiring, and table printing.
//!
//! Simulations run through [`crate::plan::RunPlan`], which executes the
//! (scheme, seed) grid across worker threads and folds results back in
//! deterministic plan order — the table, CSV, and trace output is
//! byte-identical under any `--jobs` value.

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use dcsim::{Engine, FlowSpec, SimConfig, SimResult};
use eventsim::SimTime;
use netsim::topology::TopologySpec;
use netsim::LinkSpec;
use netstats::{summarize_flows, FctSummary, Metric};
use telemetry::{BufferSink, Profile, Registry, TraceEvent, Tracer};
use transport::{RtoMode, TransportKind};
use workload::MixParams;

use crate::plan::RunPlan;

/// Command-line options common to every experiment binary.
#[derive(Clone, Debug)]
pub struct Args {
    /// Paper-scale parameters (96 hosts, 10 k background flows). Slow.
    pub full: bool,
    /// Smallest credible scale, for smoke runs.
    pub quick: bool,
    /// Number of seeds to average over (≥ 1).
    pub seeds: u64,
    /// Worker threads for the (scheme, seed) grid; `None` means one per
    /// available core.
    pub jobs: Option<usize>,
    /// Optional CSV output path.
    pub out: Option<String>,
    /// Optional flight-recorder JSONL output path.
    pub trace: Option<String>,
    /// Per-port telemetry sampling period in nanoseconds (with `--trace`).
    pub trace_sample_ns: Option<u64>,
    /// Optional metrics-registry export path (`.csv` for CSV, JSON
    /// otherwise).
    pub metrics: Option<String>,
    /// Optional engine-profile export path (`tlt-profile/v1` JSON).
    /// Meaningful only when built with `--features profile`.
    pub profile_out: Option<String>,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            full: false,
            quick: false,
            seeds: 3,
            jobs: None,
            out: None,
            trace: None,
            trace_sample_ns: None,
            metrics: None,
            profile_out: None,
        }
    }
}

impl Args {
    /// Parses `std::env::args()`. Invalid or unknown flags abort with usage
    /// help.
    ///
    /// When `--trace` is given, every simulation the binary subsequently
    /// runs through [`run_scheme`] / [`traced_run`] / a
    /// [`RunPlan`] appends its events to the named JSONL file
    /// (created fresh at startup).
    pub fn parse() -> Args {
        let args = match Args::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => usage(&msg),
        };
        args.init_outputs();
        args
    }

    /// Installs the global `--trace` / `--metrics` / `--profile-out`
    /// outputs this argument set requests and stamps their provenance.
    /// [`Args::parse`] does this automatically; binaries that pre-extract
    /// bespoke flags and go through [`Args::parse_from`] themselves (e.g.
    /// `serve_grid --scale`) must call it once before running anything.
    pub fn init_outputs(&self) {
        if let Some(path) = &self.trace {
            init_trace(path, self.trace_sample_ns);
        }
        if let Some(path) = &self.metrics {
            init_metrics(path);
        }
        if let Some(path) = &self.profile_out {
            if !cfg!(feature = "profile") {
                eprintln!(
                    "warning: --profile-out was given but the bench crate was built \
                     without --features profile; {path} will stay empty"
                );
            }
            init_profile(path);
        }
        // Stamp provenance into the deterministic exports before any run
        // merges in (meta merges first-wins, so the stamp is pinned).
        if self.metrics.is_some() || self.profile_out.is_some() {
            let prov = crate::profiler::Provenance::deterministic(self);
            if self.metrics.is_some() {
                let mut r = Registry::new();
                prov.stamp(&mut r);
                merge_metrics(&r);
            }
            if self.profile_out.is_some() {
                let mut p = Profile::new();
                prov.stamp_profile(&mut p);
                merge_profile(&p);
            }
        }
    }

    /// Parses an explicit argument list (no I/O, no process exit), so the
    /// validation rules are unit-testable.
    ///
    /// Rejected with an error: `--seeds 0` (the seed loop `1..=0` would run
    /// nothing and print all-zero tables), `--trace-sample-ns 0` (a
    /// zero-period sampler would loop forever), and `--jobs 0`.
    pub fn parse_from<I>(iter: I) -> Result<Args, String>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let mut args = Args::default();
        let mut it = iter.into_iter().map(Into::into);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => args.full = true,
                "--quick" => args.quick = true,
                "--seeds" => {
                    args.seeds = parse_positive(it.next(), "--seeds")?;
                }
                "--jobs" => {
                    args.jobs = Some(parse_positive(it.next(), "--jobs")? as usize);
                }
                "--out" => {
                    args.out = Some(it.next().ok_or("--out needs a path")?);
                }
                "--trace" => {
                    args.trace = Some(it.next().ok_or("--trace needs a path")?);
                }
                "--trace-sample-ns" => {
                    args.trace_sample_ns = Some(parse_positive(it.next(), "--trace-sample-ns")?);
                }
                "--metrics" => {
                    args.metrics = Some(it.next().ok_or("--metrics needs a path")?);
                }
                "--profile-out" => {
                    args.profile_out = Some(it.next().ok_or("--profile-out needs a path")?);
                }
                "--help" | "-h" => return Err(String::new()),
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if args.quick {
            args.seeds = args.seeds.min(1);
        }
        Ok(args)
    }

    /// The standard-mix parameters for this scale.
    pub fn mix(&self) -> MixParams {
        if self.full {
            MixParams::paper()
        } else if self.quick {
            MixParams::reduced(100)
        } else {
            MixParams::reduced(400)
        }
    }

    /// The worker-thread count to use: `--jobs N`, or every available core.
    pub fn effective_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    }
}

/// Parses a flag value that must be a strictly positive integer.
fn parse_positive(v: Option<String>, flag: &str) -> Result<u64, String> {
    let n: u64 = v
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("{flag} needs a number"))?;
    if n == 0 {
        return Err(format!("{flag} must be >= 1"));
    }
    Ok(n)
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <experiment> [--full] [--quick] [--seeds N] [--jobs N] [--out file.csv] \
         [--trace file.jsonl] [--trace-sample-ns N] [--metrics file.json] \
         [--profile-out file.json]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

/// Process-wide flight-recorder output installed by [`init_trace`].
///
/// Simulations never write here directly: each run records into a private
/// [`BufferSink`] (which is `Send`, so runs may execute on worker threads)
/// and the encoded bytes are appended under this lock afterwards — by
/// [`traced_run`] immediately for sequential callers, and by
/// [`RunPlan`] in deterministic plan order for parallel grids.
struct TraceState {
    out: BufWriter<File>,
    sample_every: Option<SimTime>,
}

static TRACE: Mutex<Option<TraceState>> = Mutex::new(None);
/// Fast-path gate for [`TRACE`]: workers consult this relaxed load instead
/// of taking the mutex when tracing was never installed. Set (once, before
/// any workers exist) by [`init_trace`] and never cleared, so a relaxed
/// ordering suffices — the mutex acquisition inside the slow path provides
/// the necessary synchronization for the state itself.
static TRACE_ON: AtomicBool = AtomicBool::new(false);

/// Opens (truncating) the JSONL flight-recorder file at `path` and routes
/// every subsequent [`traced_run`] / [`run_scheme`] / [`RunPlan`]
/// simulation through it. `sample_ns`, when set, enables per-port
/// `port_sample` telemetry at that period for configs that do not already
/// request their own.
///
/// [`Args::parse`] calls this when `--trace` is present; experiments with
/// bespoke main loops may also call it directly.
pub fn init_trace(path: &str, sample_ns: Option<u64>) {
    let file = File::create(path)
        .unwrap_or_else(|e| usage(&format!("cannot create trace file {path}: {e}")));
    *TRACE.lock().unwrap() = Some(TraceState {
        out: BufWriter::new(file),
        sample_every: sample_ns.map(SimTime::from_ns),
    });
    TRACE_ON.store(true, Ordering::Relaxed);
}

/// The installed flight recorder's sampling period: `None` when tracing is
/// off, `Some(sample_every)` when on.
pub(crate) fn trace_config() -> Option<Option<SimTime>> {
    if !TRACE_ON.load(Ordering::Relaxed) {
        return None;
    }
    TRACE.lock().unwrap().as_ref().map(|s| s.sample_every)
}

/// Appends one run's (or one plan's) encoded trace bytes to the installed
/// flight-recorder file. No-op when tracing is off or `bytes` is empty.
pub(crate) fn append_trace(bytes: &[u8]) {
    if bytes.is_empty() || !TRACE_ON.load(Ordering::Relaxed) {
        return;
    }
    if let Some(state) = TRACE.lock().unwrap().as_mut() {
        state.out.write_all(bytes).expect("write trace file");
        state.out.flush().expect("flush trace file");
    }
}

/// Process-wide metrics export installed by [`init_metrics`]: the merged
/// registry plus its output path. The file is rewritten after every merge,
/// so at any instant it holds a valid document covering every run so far.
struct MetricsOut {
    path: String,
    reg: Registry,
}

static METRICS: Mutex<Option<MetricsOut>> = Mutex::new(None);
/// Fast-path gate for [`METRICS`]; see [`TRACE_ON`] for the protocol.
static METRICS_ON: AtomicBool = AtomicBool::new(false);

/// Routes every subsequent simulation's metrics registry into `path`
/// (written as CSV when the path ends in `.csv`, pretty JSON otherwise).
/// Registries merge deterministically — counters sum, gauges take the max,
/// histograms add bucket-wise — in plan order, so the exported file is
/// byte-identical under any `--jobs` value.
///
/// [`Args::parse`] calls this when `--metrics` is present.
pub fn init_metrics(path: &str) {
    let mut state = MetricsOut {
        path: path.to_string(),
        reg: Registry::new(),
    };
    write_metrics(&mut state);
    *METRICS.lock().unwrap() = Some(state);
    METRICS_ON.store(true, Ordering::Relaxed);
}

/// Whether a metrics export is installed.
pub(crate) fn metrics_on() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

/// Merges one run's (or one plan's) registry into the installed export and
/// rewrites the file. No-op when `--metrics` is off.
pub(crate) fn merge_metrics(reg: &Registry) {
    if !METRICS_ON.load(Ordering::Relaxed) {
        return;
    }
    if let Some(state) = METRICS.lock().unwrap().as_mut() {
        state.reg.merge(reg);
        write_metrics(state);
    }
}

fn write_metrics(state: &mut MetricsOut) {
    let body = if state.path.ends_with(".csv") {
        state.reg.to_csv()
    } else {
        state.reg.to_json()
    };
    std::fs::write(&state.path, body)
        .unwrap_or_else(|e| usage(&format!("cannot write metrics file {}: {e}", state.path)));
}

/// Process-wide engine-profile export installed by [`init_profile`]: the
/// merged `tlt-profile/v1` document plus its output path. Mirrors the
/// metrics export: rewritten after every merge, byte-identical under any
/// `--jobs` value because merges happen in plan order.
struct ProfileOut {
    path: String,
    prof: Profile,
}

static PROFILE: Mutex<Option<ProfileOut>> = Mutex::new(None);
/// Fast-path gate for [`PROFILE`]; see [`TRACE_ON`] for the protocol.
static PROFILE_ON: AtomicBool = AtomicBool::new(false);

/// Routes every subsequent simulation's engine profile into `path` as
/// `tlt-profile/v1` JSON. Only runs built with the `profile` feature
/// produce profiles; without it the export holds just the provenance
/// stamp. [`Args::parse`] calls this when `--profile-out` is present.
pub fn init_profile(path: &str) {
    let mut state = ProfileOut {
        path: path.to_string(),
        prof: Profile::new(),
    };
    write_profile(&mut state);
    *PROFILE.lock().unwrap() = Some(state);
    PROFILE_ON.store(true, Ordering::Relaxed);
}

/// Merges one run's (or one plan's) engine profile into the installed
/// export and rewrites the file. No-op when `--profile-out` is off.
pub(crate) fn merge_profile(prof: &Profile) {
    if !PROFILE_ON.load(Ordering::Relaxed) {
        return;
    }
    if let Some(state) = PROFILE.lock().unwrap().as_mut() {
        state.prof.merge(prof);
        write_profile(state);
    }
}

fn write_profile(state: &mut ProfileOut) {
    std::fs::write(&state.path, state.prof.to_json())
        .unwrap_or_else(|e| usage(&format!("cannot write profile file {}: {e}", state.path)));
}

/// Runs one simulation, recording it into a private buffer when `trace` is
/// on and populating [`SimResult::metrics`] when `metrics` is on. Each
/// traced run is bracketed by `run_start` (with `label` and the config's
/// seed) and `run_end` (with the producer's own aggregate totals),
/// making the trace self-verifying for `trace_inspect`.
///
/// This is the thread-agnostic core: it touches no global state, so
/// [`RunPlan`] workers call it concurrently and merge the returned
/// buffers in plan order.
pub(crate) fn buffered_run(
    label: &str,
    mut cfg: SimConfig,
    flows: Vec<FlowSpec>,
    trace: bool,
    sample_every: Option<SimTime>,
    metrics: bool,
) -> (SimResult, Option<Vec<u8>>) {
    if trace && cfg.trace_sample_every.is_none() {
        cfg.trace_sample_every = sample_every;
    }
    let seed = cfg.seed;
    let mut eng = Engine::new(cfg, flows);
    if metrics {
        eng.set_metrics();
    }
    if !trace {
        return (eng.run(), None);
    }
    let (tracer, sink) = Tracer::new(BufferSink::new());
    tracer.emit(SimTime::ZERO, || TraceEvent::RunStart {
        label: label.to_string(),
        seed,
    });
    eng.set_tracer(tracer.clone());
    let res = eng.run();
    tracer.emit(res.agg.duration, || TraceEvent::RunEnd {
        drops_color: res.agg.drops_color,
        drops_dt: res.agg.drops_dt,
        drops_overflow: res.agg.drops_overflow,
        wire_drops: res.agg.wire_drops,
        down_drops: res.agg.down_drops,
        pause_frames: res.agg.pause_frames,
        timeouts: res.agg.timeouts,
        rto_causes: res.agg.rto_causes,
    });
    let bytes = sink.borrow_mut().take_bytes();
    (res, Some(bytes))
}

/// Runs one simulation, recording it to the flight recorder when one is
/// installed ([`init_trace`]), and appends its events to the trace file
/// immediately; likewise the metrics export ([`init_metrics`]). Sequential
/// convenience for bespoke experiment loops; grids should go through a
/// [`RunPlan`].
pub fn traced_run(label: &str, cfg: SimConfig, flows: Vec<FlowSpec>) -> SimResult {
    let sample_every = trace_config();
    let (res, bytes) = buffered_run(
        label,
        cfg,
        flows,
        sample_every.is_some(),
        sample_every.flatten(),
        metrics_on(),
    );
    if let Some(b) = bytes {
        append_trace(&b);
    }
    if let Some(r) = &res.metrics {
        merge_metrics(r);
    }
    if let Some(p) = &res.profile {
        merge_profile(p);
    }
    res
}

/// The leaf–spine topology matching a [`MixParams`] instance, with the
/// paper's per-family link latency (10 μs TCP, 1 μs RoCE).
pub fn mix_topology(p: &MixParams, roce: bool) -> TopologySpec {
    let delay = if roce {
        SimTime::from_us(1)
    } else {
        SimTime::from_us(10)
    };
    let link = LinkSpec::new(p.link_bw_bps, delay);
    TopologySpec::LeafSpine {
        cores: p.cores,
        tors: p.tors,
        hosts_per_tor: p.hosts / p.tors,
        host_link: link,
        fabric_link: link,
    }
}

/// Loss-recovery variants of the TCP family compared in Figures 5/7/15.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcpVariant {
    /// 4 ms RTO_min (Linux default).
    Baseline,
    /// Baseline plus Tail Loss Probe.
    Tlp,
    /// 200 μs RTO_min (high-resolution timers \[54\]).
    Us200,
    /// TLT.
    Tlt,
}

impl TcpVariant {
    /// All four, in the paper's presentation order.
    pub const ALL: [TcpVariant; 4] = [
        TcpVariant::Baseline,
        TcpVariant::Tlp,
        TcpVariant::Us200,
        TcpVariant::Tlt,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            TcpVariant::Baseline => "base",
            TcpVariant::Tlp => "+TLP",
            TcpVariant::Us200 => "200us",
            TcpVariant::Tlt => "+TLT",
        }
    }
}

/// Builds a TCP-family config for `kind` under `variant`, scaled to the
/// mix's topology.
pub fn tcp_cfg(p: &MixParams, kind: TransportKind, variant: TcpVariant, pfc: bool) -> SimConfig {
    let mut cfg = SimConfig::tcp_family(kind).with_topology(mix_topology(p, false));
    match variant {
        TcpVariant::Baseline => {}
        TcpVariant::Tlp => cfg.tlp = true,
        TcpVariant::Us200 => {
            cfg.rto = RtoMode::microsecond();
        }
        TcpVariant::Tlt => cfg = cfg.with_tlt(),
    }
    if pfc {
        cfg = cfg.with_pfc();
    }
    cfg
}

/// Builds a RoCE-family config, optionally with TLT and/or PFC.
pub fn roce_cfg(p: &MixParams, kind: TransportKind, tlt: bool, pfc: bool) -> SimConfig {
    let mut cfg = SimConfig::roce_family(kind).with_topology(mix_topology(p, true));
    if tlt {
        cfg = cfg.with_tlt();
    }
    if pfc {
        cfg = cfg.with_pfc();
    }
    cfg
}

/// The outcome of one simulation, pre-summarized.
pub struct MixOutcome {
    /// Foreground-flow FCT summary.
    pub fg: FctSummary,
    /// Background-flow FCT summary.
    pub bg: FctSummary,
    /// Engine aggregates.
    pub agg: dcsim::AggregateStats,
}

impl MixOutcome {
    /// Summarizes a raw simulation result.
    pub fn from_result(res: SimResult) -> MixOutcome {
        MixOutcome {
            fg: summarize_flows(res.flows.iter(), |f| f.fg),
            bg: summarize_flows(res.flows.iter(), |f| !f.fg),
            agg: res.agg,
        }
    }
}

/// Runs one simulation (through the flight recorder when installed) and
/// summarizes it.
pub fn run_once(label: &str, cfg: SimConfig, flows: Vec<FlowSpec>) -> MixOutcome {
    MixOutcome::from_result(traced_run(label, cfg, flows))
}

/// Cross-seed metrics of one scheme (one bar/line of a figure).
#[derive(Clone, Debug, Default)]
pub struct SchemeResult {
    /// Scheme label.
    pub name: String,
    /// Foreground 99.9th-percentile FCT (ms).
    pub fg_p999_ms: Metric,
    /// Foreground 99th-percentile FCT (ms).
    pub fg_p99_ms: Metric,
    /// Background average FCT (ms).
    pub bg_avg_ms: Metric,
    /// Background goodput (Gbps).
    pub bg_goodput_gbps: Metric,
    /// Timeouts per 1 k flows (all flows).
    pub timeouts_per_1k: Metric,
    /// PFC PAUSE frames per 1 k flows.
    pub pause_per_1k: Metric,
    /// Mean fraction of time a (paused-at-least-once) link was paused.
    pub pause_frac: Metric,
    /// Fraction of data packets marked important.
    pub important_frac: Metric,
    /// Important-packet loss rate at switches.
    pub important_loss: Metric,
    /// Payload bytes injected by important ACK-clocking.
    pub clocking_kb: Metric,
    /// Largest egress queue observed (kB).
    pub max_queue_kb: Metric,
    /// Median of the sampled deepest-queue series (kB).
    pub median_queue_kb: Metric,
    /// Raw RTO count summed over all flows (recovery tables).
    pub timeouts_total: Metric,
    /// Raw fast-retransmission count summed over all flows.
    pub fast_retx_total: Metric,
    /// Frames destroyed on downed links (plus reroute-orphaned frames).
    pub down_drops: Metric,
    /// Frames lost to injected wire corruption.
    pub wire_drops: Metric,
    /// Time from the first injected fault to the end of the run (ms);
    /// zero when the run had no faults.
    pub recovery_ms: Metric,
    /// Simulator events scheduled, summed over this scheme's seeds (work
    /// accounting for events/sec reporting).
    pub events_scheduled: u64,
}

impl SchemeResult {
    /// Folds one run's outcome in.
    pub fn add(&mut self, o: &MixOutcome) {
        let total_flows = (o.fg.count + o.bg.count).max(1) as f64;
        self.fg_p999_ms.add(o.fg.p999 * 1e3);
        self.fg_p99_ms.add(o.fg.p99 * 1e3);
        self.bg_avg_ms.add(o.bg.avg * 1e3);
        self.bg_goodput_gbps.add(o.bg.goodput_bps / 1e9);
        self.timeouts_per_1k
            .add(o.agg.timeouts as f64 * 1000.0 / total_flows);
        self.pause_per_1k
            .add(o.agg.pause_frames as f64 * 1000.0 / total_flows);
        self.pause_frac.add(o.agg.link_pause_fraction);
        self.important_frac.add(o.agg.important_fraction());
        self.important_loss.add(o.agg.important_loss_rate());
        self.clocking_kb.add(o.agg.clocking_bytes as f64 / 1e3);
        self.max_queue_kb.add(o.agg.max_queue_bytes as f64 / 1e3);
        let mut qs = o.agg.queue_samples.clone();
        self.median_queue_kb
            .add(qs.percentile(50.0).unwrap_or(0.0) / 1e3);
        self.timeouts_total.add(o.agg.timeouts as f64);
        self.fast_retx_total.add(o.agg.fast_retx as f64);
        self.down_drops.add(o.agg.down_drops as f64);
        self.wire_drops.add(o.agg.wire_drops as f64);
        self.recovery_ms.add(if o.agg.faults_injected > 0 {
            (o.agg.duration - o.agg.first_fault_at).as_secs_f64() * 1e3
        } else {
            0.0
        });
        self.events_scheduled += o.agg.events_scheduled;
    }
}

/// Runs `scheme` over the standard seed range and aggregates, using up to
/// `args.effective_jobs()` worker threads across the seeds.
///
/// Single-scheme convenience over [`RunPlan`]; binaries with a grid
/// of schemes should enqueue them all on one plan so scheme × seed jobs
/// share the worker pool.
pub fn run_scheme(
    name: impl Into<String>,
    args: &Args,
    make_cfg: impl Fn(u64) -> SimConfig + Sync,
    make_flows: impl Fn(u64) -> Vec<FlowSpec> + Sync,
) -> SchemeResult {
    let mut plan = RunPlan::new(args);
    plan.scheme(name, make_cfg, make_flows);
    plan.run().pop().expect("one scheme")
}

/// Prints a header line for a paper-style table.
pub fn print_header(title: &str, cols: &[&str]) {
    println!("\n== {title} ==");
    print!("{:<28}", "scheme");
    for c in cols {
        print!("{c:>16}");
    }
    println!();
}

/// Prints one row, `mean ±std` per metric.
pub fn print_row(name: &str, metrics: &[&Metric]) {
    print!("{name:<28}");
    for m in metrics {
        print!("{:>10.3}±{:<5.3}", m.mean(), m.std());
    }
    println!();
}

/// Writes scheme rows to CSV if `--out` was given.
pub fn maybe_csv(args: &Args, headers: &[&str], rows: &[Vec<String>]) {
    if let Some(path) = &args.out {
        netstats::write_csv(path, headers, rows).expect("write csv");
        eprintln!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::parse_from(args.iter().copied())
    }

    #[test]
    fn parse_defaults() {
        let a = parse(&[]).unwrap();
        assert!(!a.full && !a.quick);
        assert_eq!(a.seeds, 3);
        assert_eq!(a.jobs, None);
        assert!(a.effective_jobs() >= 1);
    }

    #[test]
    fn parse_flags() {
        let a = parse(&[
            "--full",
            "--seeds",
            "5",
            "--jobs",
            "2",
            "--out",
            "x.csv",
            "--trace",
            "t.jsonl",
            "--trace-sample-ns",
            "1000",
            "--metrics",
            "m.json",
            "--profile-out",
            "p.json",
        ])
        .unwrap();
        assert!(a.full);
        assert_eq!(a.seeds, 5);
        assert_eq!(a.jobs, Some(2));
        assert_eq!(a.effective_jobs(), 2);
        assert_eq!(a.out.as_deref(), Some("x.csv"));
        assert_eq!(a.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(a.trace_sample_ns, Some(1000));
        assert_eq!(a.metrics.as_deref(), Some("m.json"));
        assert_eq!(a.profile_out.as_deref(), Some("p.json"));
    }

    /// Regression: `--seeds 0` used to be accepted, making the `1..=0`
    /// seed loop run nothing and print all-zero tables with no warning.
    #[test]
    fn parse_rejects_zero_values() {
        assert!(parse(&["--seeds", "0"]).unwrap_err().contains("--seeds"));
        assert!(parse(&["--jobs", "0"]).unwrap_err().contains("--jobs"));
        assert!(parse(&["--trace-sample-ns", "0"])
            .unwrap_err()
            .contains("--trace-sample-ns"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse(&["--seeds", "abc"]).is_err());
        assert!(parse(&["--seeds"]).is_err());
        assert!(parse(&["--wat"]).unwrap_err().contains("--wat"));
        assert!(parse(&["--out"]).is_err());
    }

    #[test]
    fn quick_caps_seeds() {
        let a = parse(&["--quick", "--seeds", "5"]).unwrap();
        assert_eq!(a.seeds, 1);
    }
}
