//! Feature-gated wall-clock scope profiler for the *harness* layer.
//!
//! The simulation crates are forbidden from reading wall time (simlint rule
//! D2 — determinism), but the bench harness legitimately wants to know where
//! real time goes: which workload phase dominates `bench_baseline`, and how
//! many simulator events per wall-second each phase sustains. This module
//! provides that without contaminating the simulation: it is compiled to
//! no-ops unless the `simprof` cargo feature is on, and even with the
//! feature on it may only ever be called from harness code (`simlint`
//! allowlists exactly this file and `baseline.rs` for wall-clock tokens in
//! the bench crate).
//!
//! Usage:
//!
//! ```
//! let mut p = bench::simprof::scope("tcp_family_mix/jobs1");
//! // ... run the phase ...
//! p.add_events(12_345); // simulator events attributed to the phase
//! drop(p);              // records wall time on drop
//! let phases = bench::simprof::report(); // empty unless --features simprof
//! ```
//!
//! Totals accumulate in a global map keyed by phase label; repeated scopes
//! with the same label sum. `report()` snapshots (sorted by label) and
//! `reset()` clears — both are cheap and safe to call with the feature off.

#[cfg(feature = "simprof")]
use std::collections::BTreeMap;
#[cfg(feature = "simprof")]
use std::sync::Mutex;
#[cfg(feature = "simprof")]
use std::time::Instant;

/// Accumulated measurements for one phase label.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTotals {
    /// Total wall time spent inside scopes with this label (ms).
    pub wall_ms: f64,
    /// Number of scopes recorded.
    pub calls: u64,
    /// Simulator events attributed via [`Scope::add_events`].
    pub events: u64,
}

impl PhaseTotals {
    /// Attributed events per wall-clock second (0.0 when no time elapsed).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.events as f64 / (self.wall_ms / 1e3)
        } else {
            0.0
        }
    }
}

#[cfg(feature = "simprof")]
static PHASES: Mutex<BTreeMap<String, PhaseTotals>> = Mutex::new(BTreeMap::new());

/// An open profiling scope; records into the global map when dropped.
/// A no-op shell unless the `simprof` feature is enabled.
pub struct Scope {
    #[cfg(feature = "simprof")]
    label: String,
    #[cfg(feature = "simprof")]
    events: u64,
    #[cfg(feature = "simprof")]
    start: Instant,
}

/// Opens a profiling scope for `label`. Wall time from this call until the
/// returned guard drops is added to the label's totals.
#[cfg(feature = "simprof")]
pub fn scope(label: impl Into<String>) -> Scope {
    Scope {
        label: label.into(),
        events: 0,
        start: Instant::now(),
    }
}

/// Feature-off stub: returns an inert guard and reads no clocks.
#[cfg(not(feature = "simprof"))]
pub fn scope(_label: impl Into<String>) -> Scope {
    Scope {}
}

impl Scope {
    /// Attributes `n` simulator events to this scope (for events/sec).
    pub fn add_events(&mut self, n: u64) {
        #[cfg(feature = "simprof")]
        {
            self.events += n;
        }
        #[cfg(not(feature = "simprof"))]
        let _ = n;
    }
}

#[cfg(feature = "simprof")]
impl Drop for Scope {
    fn drop(&mut self) {
        let wall_ms = self.start.elapsed().as_secs_f64() * 1e3;
        let mut map = PHASES.lock().unwrap();
        let t = map.entry(std::mem::take(&mut self.label)).or_default();
        t.wall_ms += wall_ms;
        t.calls += 1;
        t.events += self.events;
    }
}

/// Whether the profiler is compiled in.
pub fn enabled() -> bool {
    cfg!(feature = "simprof")
}

/// Snapshot of every phase's totals, sorted by label. Empty when the
/// `simprof` feature is off.
pub fn report() -> Vec<(String, PhaseTotals)> {
    #[cfg(feature = "simprof")]
    {
        PHASES
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
    #[cfg(not(feature = "simprof"))]
    Vec::new()
}

/// Clears all accumulated totals.
pub fn reset() {
    #[cfg(feature = "simprof")]
    PHASES.lock().unwrap().clear();
}

/// Human-readable table of the current totals (empty string when there are
/// none — callers can print unconditionally).
pub fn render() -> String {
    let phases = report();
    if phases.is_empty() {
        return String::new();
    }
    let mut s = String::from(
        "== simprof phases ==\nphase                                 calls   wall (ms)        events      events/s\n",
    );
    for (label, t) in &phases {
        s.push_str(&format!(
            "{:<36}{:>8}{:>12.1}{:>14}{:>14.0}\n",
            label,
            t.calls,
            t.wall_ms,
            t.events,
            t.events_per_sec()
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "simprof")]
    #[test]
    fn scopes_accumulate_under_their_label() {
        reset();
        for _ in 0..3 {
            let mut p = scope("unit/phase_a");
            p.add_events(10);
            drop(p);
        }
        let phases = report();
        let (label, t) = phases
            .iter()
            .find(|(l, _)| l == "unit/phase_a")
            .expect("phase recorded");
        assert_eq!(label, "unit/phase_a");
        assert_eq!(t.calls, 3);
        assert_eq!(t.events, 30);
        assert!(t.wall_ms >= 0.0);
        assert!(render().contains("unit/phase_a"));
        reset();
    }

    #[cfg(not(feature = "simprof"))]
    #[test]
    fn feature_off_is_inert() {
        {
            let mut p = scope("unit/ignored");
            p.add_events(99);
        }
        assert!(!enabled());
        assert!(report().is_empty());
        assert_eq!(render(), "");
    }
}
