//! The performance-baseline workload suite behind the `bench_baseline`
//! binary.
//!
//! Each workload is a representative (scheme, seed) grid drawn from the
//! figure binaries. The suite runs every workload twice — once with a
//! single worker (`--jobs 1`) and once with the requested worker count —
//! measuring wall-clock time and simulator events/sec for both, verifying
//! that the parallel fold reproduces the sequential results exactly, and
//! emitting a machine-readable JSON report (`BENCH_pr7.json`; the PR-2
//! seed lives in `BENCH_pr2.json`) so later PRs have a trajectory to be
//! measured against — diff two reports with the `benchcmp` binary.

use transport::TransportKind;
use workload::{incast_burst, standard_mix, FlowSizeCdf};

use crate::plan::RunPlan;
use crate::profiler::{self, Provenance, Timed};
use crate::runner::{self, Args, SchemeResult, TcpVariant};
use crate::simprof;

/// One workload's report line.
pub struct WorkloadReport {
    /// Workload name (stable across PRs).
    pub name: &'static str,
    /// Schemes in the grid.
    pub schemes: usize,
    /// (scheme, seed) jobs executed per run.
    pub jobs_run: usize,
    /// Wall time with one worker (ms).
    pub wall_ms_jobs1: f64,
    /// Wall time with `jobs` workers (ms).
    pub wall_ms_jobsn: f64,
    /// Simulator events scheduled (identical across worker counts).
    pub events_scheduled: u64,
    /// Whether the parallel fold reproduced the sequential results exactly.
    pub deterministic: bool,
}

impl WorkloadReport {
    /// `jobs1` wall time over `jobsn` wall time.
    pub fn speedup(&self) -> f64 {
        if self.wall_ms_jobsn > 0.0 {
            self.wall_ms_jobs1 / self.wall_ms_jobsn
        } else {
            1.0
        }
    }
}

/// The whole suite's report.
pub struct SuiteReport {
    /// Cores the host offers.
    pub cores: usize,
    /// Worker count the parallel runs used.
    pub jobs: usize,
    /// Scale label (`quick` / `default` / `full`).
    pub scale: &'static str,
    /// Seeds per scheme.
    pub seeds: u64,
    /// `release` or `debug` — provenance so `benchcmp` can refuse to diff
    /// wall-clock numbers across build profiles.
    pub build_profile: &'static str,
    /// Per-workload measurements.
    pub workloads: Vec<WorkloadReport>,
    /// `simprof` per-phase wall-time totals (empty unless the bench crate
    /// was built with `--features simprof`).
    pub profile: Vec<(String, simprof::PhaseTotals)>,
}

impl SuiteReport {
    /// Total sequential wall time (ms).
    pub fn total_jobs1_ms(&self) -> f64 {
        self.workloads.iter().map(|w| w.wall_ms_jobs1).sum()
    }

    /// Total parallel wall time (ms).
    pub fn total_jobsn_ms(&self) -> f64 {
        self.workloads.iter().map(|w| w.wall_ms_jobsn).sum()
    }

    /// Whole-suite speedup.
    pub fn total_speedup(&self) -> f64 {
        if self.total_jobsn_ms() > 0.0 {
            self.total_jobs1_ms() / self.total_jobsn_ms()
        } else {
            1.0
        }
    }

    /// Whether every workload's parallel fold matched its sequential run.
    pub fn all_deterministic(&self) -> bool {
        self.workloads.iter().all(|w| w.deterministic)
    }

    /// Hand-rolled JSON encoding (the repo is `std`-only; no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"tlt-bench-baseline/v1\",\n");
        s.push_str("  \"generated_by\": \"bench_baseline\",\n");
        s.push_str(&format!("  \"cores\": {},\n", self.cores));
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        s.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        s.push_str(&format!("  \"seeds\": {},\n", self.seeds));
        s.push_str(&format!(
            "  \"build_profile\": \"{}\",\n",
            self.build_profile
        ));
        s.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            let events_per_sec = |ms: f64| {
                if ms > 0.0 {
                    w.events_scheduled as f64 / (ms / 1e3)
                } else {
                    0.0
                }
            };
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"schemes\": {}, \"jobs_run\": {}, \
                 \"wall_ms_jobs1\": {:.3}, \"wall_ms_jobsn\": {:.3}, \
                 \"speedup\": {:.3}, \"events_scheduled\": {}, \
                 \"events_per_sec_jobs1\": {:.0}, \"events_per_sec_jobsn\": {:.0}, \
                 \"deterministic\": {}}}{}\n",
                w.name,
                w.schemes,
                w.jobs_run,
                w.wall_ms_jobs1,
                w.wall_ms_jobsn,
                w.speedup(),
                w.events_scheduled,
                events_per_sec(w.wall_ms_jobs1),
                events_per_sec(w.wall_ms_jobsn),
                w.deterministic,
                if i + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"simprof\": {},\n", simprof::enabled()));
        if !self.profile.is_empty() {
            s.push_str("  \"phases\": [\n");
            for (i, (label, t)) in self.profile.iter().enumerate() {
                s.push_str(&format!(
                    "    {{\"phase\": \"{}\", \"calls\": {}, \"wall_ms\": {:.3}, \
                     \"events\": {}, \"events_per_sec\": {:.0}}}{}\n",
                    label,
                    t.calls,
                    t.wall_ms,
                    t.events,
                    t.events_per_sec(),
                    if i + 1 < self.profile.len() { "," } else { "" },
                ));
            }
            s.push_str("  ],\n");
        }
        s.push_str(&format!(
            "  \"total\": {{\"wall_ms_jobs1\": {:.3}, \"wall_ms_jobsn\": {:.3}, \
             \"speedup\": {:.3}, \"deterministic\": {}}}\n",
            self.total_jobs1_ms(),
            self.total_jobsn_ms(),
            self.total_speedup(),
            self.all_deterministic(),
        ));
        s.push_str("}\n");
        s
    }
}

/// The suite's workload names, in execution order.
pub const WORKLOADS: [&str; 3] = ["tcp_family_mix", "roce_family_mix", "incast_micro"];

/// Builds the named workload's plan at the given worker count.
fn build(name: &str, args: &Args, jobs: usize) -> RunPlan<'static> {
    let mut plan = RunPlan::sized(jobs, args.seeds);
    match name {
        // Figure 5-style: DCTCP {baseline, TLT} × {lossy, PFC} on the
        // standard mix.
        "tcp_family_mix" => {
            let p = args.mix();
            for pfc in [false, true] {
                for v in [TcpVariant::Baseline, TcpVariant::Tlt] {
                    plan.scheme(
                        format!(
                            "dctcp{}{}",
                            if pfc { "+pfc" } else { "" },
                            if v == TcpVariant::Tlt { "+tlt" } else { "" }
                        ),
                        move |_s| runner::tcp_cfg(&p, TransportKind::Dctcp, v, pfc),
                        move |s| {
                            let mut mp = p;
                            mp.seed = s;
                            standard_mix(&FlowSizeCdf::web_search(), mp)
                        },
                    );
                }
            }
        }
        // Figure 6-style: DCQCN+SACK and HPCC, baseline vs TLT.
        "roce_family_mix" => {
            let p = args.mix();
            for kind in [TransportKind::DcqcnSack, TransportKind::Hpcc] {
                for tlt in [false, true] {
                    plan.scheme(
                        format!("{}{}", kind.name(), if tlt { "+tlt" } else { "" }),
                        move |_s| runner::roce_cfg(&p, kind, tlt, false),
                        move |s| {
                            let mut mp = p;
                            mp.seed = s;
                            standard_mix(&FlowSizeCdf::web_search(), mp)
                        },
                    );
                }
            }
        }
        // Figure 14-style: synchronized single-switch incast.
        "incast_micro" => {
            let n = if args.quick { 40 } else { 100 };
            for kind in [TransportKind::Tcp, TransportKind::Dctcp] {
                for v in [TcpVariant::Baseline, TcpVariant::Tlt] {
                    plan.scheme(
                        format!(
                            "{}{}_incast{}",
                            kind.name(),
                            if v == TcpVariant::Tlt { "+tlt" } else { "" },
                            n
                        ),
                        move |_s| {
                            let p = workload::MixParams::reduced(1);
                            runner::tcp_cfg(&p, kind, v, false)
                                .with_topology(dcsim::small_single_switch(9))
                        },
                        move |s| incast_burst(n, 8, 32_000, s),
                    );
                }
            }
        }
        other => panic!("unknown workload {other}"),
    }
    plan
}

/// Exact equality of two runs' per-scheme metrics (names and every
/// per-seed measurement).
fn results_equal(a: &[SchemeResult], b: &[SchemeResult]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.name == y.name
                && x.events_scheduled == y.events_scheduled
                && [
                    (&x.fg_p999_ms, &y.fg_p999_ms),
                    (&x.fg_p99_ms, &y.fg_p99_ms),
                    (&x.bg_avg_ms, &y.bg_avg_ms),
                    (&x.bg_goodput_gbps, &y.bg_goodput_gbps),
                    (&x.timeouts_per_1k, &y.timeouts_per_1k),
                    (&x.pause_per_1k, &y.pause_per_1k),
                    (&x.pause_frac, &y.pause_frac),
                    (&x.important_frac, &y.important_frac),
                    (&x.important_loss, &y.important_loss),
                    (&x.clocking_kb, &y.clocking_kb),
                    (&x.max_queue_kb, &y.max_queue_kb),
                    (&x.median_queue_kb, &y.median_queue_kb),
                ]
                .iter()
                .all(|(m, n)| m.values() == n.values())
        })
}

fn timed(name: &str, args: &Args, jobs: usize) -> Timed {
    profiler::timed(&format!("{name}/jobs{jobs}"), build(name, args, jobs))
}

/// The parallel cross-check leg re-runs a workload that the serial leg
/// already merged into the installed `--trace` / `--metrics` /
/// `--profile-out` exports, so it runs as a shadow plan: were it to merge
/// too, every export would double under `--jobs N` while a `--jobs 1`
/// invocation (which reuses its serial leg) merged once — and the
/// "byte-identical under any worker count" guarantee would be lost.
fn timed_shadow(name: &str, args: &Args, jobs: usize) -> Timed {
    profiler::timed(
        &format!("{name}/jobs{jobs}"),
        build(name, args, jobs).shadow(),
    )
}

/// Runs the whole suite: every workload sequentially and at
/// `args.effective_jobs()` workers, with a built-in determinism
/// cross-check.
pub fn run_suite(args: &Args) -> SuiteReport {
    let jobs = args.effective_jobs();
    let mut workloads = Vec::new();
    for name in WORKLOADS {
        eprintln!("[bench_baseline] {name}: --jobs 1 ...");
        let seq = timed(name, args, 1);
        // On a single-core box (or an explicit --jobs 1) the "parallel"
        // leg would be a second serial run of the same plan — pure wall
        // noise that has reported phantom anti-speedups. Reuse the serial
        // measurement; jobs-vs-serial determinism is still covered by the
        // plan tests and CI's --jobs 1 vs 2/4 byte-compares.
        if jobs == 1 {
            eprintln!("[bench_baseline] {name}: --jobs 1 again skipped (reusing serial run)");
            workloads.push(WorkloadReport {
                name,
                schemes: seq.out.results.len(),
                jobs_run: seq.out.jobs_run,
                wall_ms_jobs1: seq.wall_ms,
                wall_ms_jobsn: seq.wall_ms,
                events_scheduled: seq.out.events_scheduled,
                deterministic: true,
            });
            continue;
        }
        eprintln!("[bench_baseline] {name}: --jobs {jobs} ...");
        let par = timed_shadow(name, args, jobs);
        // Determinism bar: parallel results, and (with the profile feature
        // on) the entire event-level profile, must match the sequential
        // run byte for byte.
        let profiles_match = match (&seq.out.profile, &par.out.profile) {
            (Some(a), Some(b)) => a.to_json() == b.to_json(),
            (None, None) => true,
            _ => false,
        };
        let deterministic = results_equal(&seq.out.results, &par.out.results)
            && seq.out.events_scheduled == par.out.events_scheduled
            && profiles_match;
        workloads.push(WorkloadReport {
            name,
            schemes: seq.out.results.len(),
            jobs_run: seq.out.jobs_run,
            wall_ms_jobs1: seq.wall_ms,
            wall_ms_jobsn: par.wall_ms,
            events_scheduled: seq.out.events_scheduled,
            deterministic,
        });
    }
    SuiteReport {
        cores: profiler::available_cores(),
        jobs,
        scale: profiler::scale_label(args),
        seeds: args.seeds,
        build_profile: Provenance::build_profile_label(),
        workloads,
        profile: simprof::report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_builds_a_nonempty_plan() {
        let args = Args::parse_from(["--quick"]).unwrap();
        for name in WORKLOADS {
            let plan = build(name, &args, 1);
            assert!(!plan.is_empty(), "{name} built an empty plan");
        }
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = SuiteReport {
            cores: 4,
            jobs: 4,
            scale: "quick",
            seeds: 1,
            build_profile: "release",
            workloads: vec![WorkloadReport {
                name: "tcp_family_mix",
                schemes: 4,
                jobs_run: 4,
                wall_ms_jobs1: 100.0,
                wall_ms_jobsn: 40.0,
                events_scheduled: 123_456,
                deterministic: true,
            }],
            profile: vec![(
                "tcp_family_mix/jobs1".to_string(),
                simprof::PhaseTotals {
                    wall_ms: 100.0,
                    calls: 1,
                    events: 123_456,
                },
            )],
        };
        let json = report.to_json();
        for key in [
            "\"schema\": \"tlt-bench-baseline/v1\"",
            "\"cores\": 4",
            "\"build_profile\": \"release\"",
            "\"wall_ms_jobs1\": 100.000",
            "\"speedup\": 2.500",
            "\"events_scheduled\": 123456",
            "\"deterministic\": true",
            "\"simprof\":",
            "\"phases\": [",
            "\"phase\": \"tcp_family_mix/jobs1\"",
            "\"events_per_sec\": 1234560",
            "\"total\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!((report.total_speedup() - 2.5).abs() < 1e-9);
    }
}
