//! Integration test for the parallel run harness: a (scheme, seed) grid
//! executed with `--jobs 4` must reproduce the `--jobs 1` results exactly —
//! every per-seed metric sample and every flight-recorder byte.

use bench::plan::{PlanOutput, RunPlan};
use bench::runner::{self, SchemeResult, TcpVariant};
use dcsim::small_single_switch;
use netstats::Metric;
use telemetry::TraceEvent;
use transport::TransportKind;
use workload::incast_burst;

/// A small but non-trivial grid: two transports × baseline/TLT, three
/// seeds each, on the single-switch incast topology.
fn grid(jobs: usize) -> RunPlan<'static> {
    let mut plan = RunPlan::sized(jobs, 3);
    for kind in [TransportKind::Tcp, TransportKind::Dctcp] {
        for v in [TcpVariant::Baseline, TcpVariant::Tlt] {
            plan.scheme(
                format!("{}/{}", kind.name(), v.label()),
                move |_s| {
                    let p = workload::MixParams::reduced(1);
                    runner::tcp_cfg(&p, kind, v, false).with_topology(small_single_switch(9))
                },
                |s| incast_burst(24, 8, 16_000, s),
            );
        }
    }
    plan
}

fn all_metrics(r: &SchemeResult) -> [&Metric; 12] {
    [
        &r.fg_p999_ms,
        &r.fg_p99_ms,
        &r.bg_avg_ms,
        &r.bg_goodput_gbps,
        &r.timeouts_per_1k,
        &r.pause_per_1k,
        &r.pause_frac,
        &r.important_frac,
        &r.important_loss,
        &r.clocking_kb,
        &r.max_queue_kb,
        &r.median_queue_kb,
    ]
}

fn assert_same_results(seq: &PlanOutput, par: &PlanOutput) {
    assert_eq!(seq.results.len(), par.results.len());
    assert_eq!(seq.events_scheduled, par.events_scheduled);
    for (a, b) in seq.results.iter().zip(&par.results) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.events_scheduled, b.events_scheduled, "{}", a.name);
        for (ma, mb) in all_metrics(a).iter().zip(all_metrics(b)) {
            // Exact per-seed sample equality, not just equal means: the
            // parallel fold must replay the sequential accumulation order.
            assert_eq!(ma.values(), mb.values(), "metric diverged for {}", a.name);
        }
    }
}

#[test]
fn jobs4_matches_jobs1_metrics() {
    let seq = grid(1).run_detailed();
    let par = grid(4).run_detailed();
    assert_eq!(seq.jobs_run, 12);
    assert_eq!(seq.workers, 1);
    assert!(par.workers > 1);
    assert!(seq.events_scheduled > 0);
    assert_same_results(&seq, &par);
}

#[test]
fn jobs4_matches_jobs1_trace_bytes() {
    let seq = grid(1).capture_trace(None).run_detailed();
    let par = grid(4).capture_trace(None).run_detailed();
    assert!(!seq.trace.is_empty());
    assert_eq!(
        seq.trace, par.trace,
        "flight-recorder bytes differ between --jobs 1 and --jobs 4"
    );

    // The merged trace is valid JSONL in plan order: one run_start/run_end
    // bracket per (scheme, seed) job, every line parseable.
    let text = String::from_utf8(seq.trace).expect("trace is utf-8");
    let mut starts = 0;
    let mut ends = 0;
    for line in text.lines() {
        let (_, ev) = TraceEvent::from_jsonl(line)
            .unwrap_or_else(|| panic!("unparseable trace line: {line}"));
        match ev {
            TraceEvent::RunStart { .. } => starts += 1,
            TraceEvent::RunEnd { .. } => ends += 1,
            _ => {}
        }
    }
    assert_eq!(starts, 12, "one run_start per (scheme, seed) job");
    assert_eq!(ends, 12, "one run_end per (scheme, seed) job");
}
