//! End-to-end tests for the harness binaries' error paths and exit codes:
//! `trace_inspect --metrics` must fail loudly (exit 2, positional
//! diagnostic) on malformed or truncated registry exports, and `benchcmp`
//! must diff two reports, refuse provenance mismatches without `--force`,
//! and gate regressions only under `--fail-on-regression`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tmp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("tlt-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp fixture");
    path
}

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin).args(args).output().expect("spawn binary")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A minimal well-formed `tlt-metrics/v1` export.
fn metrics_json() -> String {
    let mut reg = telemetry::Registry::new();
    reg.inc("data_pkts_sent", 128);
    reg.gauge_max("queue_peak_bytes", 9000);
    reg.observe("fct_us", 250);
    reg.to_json()
}

#[test]
fn trace_inspect_rejects_malformed_metrics_with_diagnostic() {
    let bin = env!("CARGO_BIN_EXE_trace_inspect");

    // Outright garbage: exit 2 and a parse diagnostic naming the file.
    let garbage = tmp("garbage.json", "this is not json {{{");
    let out = run(bin, &["--metrics", garbage.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("cannot parse"), "diagnostic missing: {err}");
    assert!(err.contains("garbage.json"), "file name missing: {err}");

    // A truncated export (simulating a crashed producer) also exits 2 —
    // every prefix of a valid document must fail cleanly, never render a
    // partial registry as if it were complete.
    let good = metrics_json();
    let truncated = tmp("truncated.json", &good[..good.len() / 2]);
    let out = run(bin, &["--metrics", truncated.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("invalid tlt-metrics JSON"));

    // The intact export still renders and exits 0.
    let intact = tmp("intact.json", &good);
    let out = run(bin, &["--metrics", intact.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("data_pkts_sent"));

    for p in [garbage, truncated, intact] {
        let _ = std::fs::remove_file(p);
    }
}

/// A minimal well-formed `tlt-spans/v1` export: one flow's phase breakdown
/// plus one request span so every section of the document is exercised.
fn spans_json() -> String {
    let mut rep = telemetry::SpanReport::new();
    let mut phases = telemetry::PhaseTimes::default();
    phases.add(telemetry::Phase::Serialization, 64_000);
    phases.add(telemetry::Phase::SwitchQueue, 21_000);
    phases.add(telemetry::Phase::RtoStall, 4_000_000);
    rep.record_flow("dctcp", &phases, phases.total(), 0);
    rep.record_violation("dctcp", telemetry::Phase::RtoStall);
    rep.push_request(telemetry::RequestSpan {
        scheme: "dctcp".to_string(),
        seed: 1,
        req: 0,
        start_ns: 0,
        latency_ns: phases.total(),
        dominant: telemetry::Phase::RtoStall,
        flows: vec![telemetry::FlowSpan {
            id: 0,
            role: "query".to_string(),
            start_ns: 0,
            end_ns: phases.total(),
            phases,
            stalls: Vec::new(),
        }],
    });
    rep.to_json()
}

#[test]
fn trace_inspect_rejects_malformed_spans_with_diagnostic() {
    let bin = env!("CARGO_BIN_EXE_trace_inspect");

    // Outright garbage: exit 2 and a parse diagnostic naming the file.
    let garbage = tmp("spans-garbage.json", "not even json [");
    let out = run(bin, &["--spans", garbage.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("cannot parse"), "diagnostic missing: {err}");
    assert!(
        err.contains("spans-garbage.json"),
        "file name missing: {err}"
    );

    // Every truncation of a valid document must fail cleanly with the
    // positional schema diagnostic, never render a partial span report.
    let good = spans_json();
    let truncated = tmp("spans-truncated.json", &good[..good.len() * 2 / 3]);
    let out = run(bin, &["--spans", truncated.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("invalid tlt-spans JSON"));

    // A document with the wrong schema tag is rejected, not misrendered.
    let wrong = tmp("spans-wrong-schema.json", &metrics_json());
    let out = run(bin, &["--spans", wrong.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("invalid tlt-spans JSON"));

    // Missing file: exit 2 with an open diagnostic.
    let out = run(bin, &["--spans", "/nonexistent/spans.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("cannot open"));

    // The intact export renders the phase table and exits 0.
    let intact = tmp("spans-intact.json", &good);
    let out = run(bin, &["--spans", intact.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let body = stdout(&out);
    assert!(body.contains("rto_stall"), "phase table missing: {body}");
    assert!(body.contains("### spans"), "section header missing: {body}");

    for p in [garbage, truncated, wrong, intact] {
        let _ = std::fs::remove_file(p);
    }
}

fn bench_report(wall_ms: f64, build_profile: &str) -> String {
    format!(
        "{{\n  \"schema\": \"tlt-bench-baseline/v1\",\n  \"generated_by\": \"bench_baseline\",\n\
         \x20 \"cores\": 8,\n  \"jobs\": 8,\n  \"scale\": \"quick\",\n  \"seeds\": 3,\n\
         \x20 \"build_profile\": \"{build_profile}\",\n\
         \x20 \"workloads\": [\n    {{\"name\": \"incast_micro\", \"wall_ms_jobs1\": {wall_ms:.3}, \
         \"wall_ms_jobsn\": {:.3}, \"speedup\": 2.0, \"events_scheduled\": 1000}}\n  ],\n\
         \x20 \"total\": {{\"wall_ms_jobs1\": {wall_ms:.3}}}\n}}\n",
        wall_ms / 2.0
    )
}

#[test]
fn benchcmp_diffs_grades_and_refuses() {
    let bin = env!("CARGO_BIN_EXE_benchcmp");
    let old = tmp("cmp-old.json", &bench_report(100.0, "release"));
    let slower = tmp("cmp-slow.json", &bench_report(150.0, "release"));
    let debug = tmp("cmp-debug.json", &bench_report(100.0, "debug"));
    let (old_p, slower_p, debug_p) = (
        old.to_str().unwrap(),
        slower.to_str().unwrap(),
        debug.to_str().unwrap(),
    );

    // Same file against itself: clean table, exit 0.
    let out = run(bin, &[old_p, old_p]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("0 regression(s)"));

    // +50% wall time: reported as a regression, but informational by default.
    let out = run(bin, &["--threshold-pct", "10", old_p, slower_p]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("REGRESSION"));

    // ... and a gate with --fail-on-regression.
    let out = run(
        bin,
        &[
            "--threshold-pct",
            "10",
            "--fail-on-regression",
            old_p,
            slower_p,
        ],
    );
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));

    // --json output carries the machine-readable verdict.
    let out = run(bin, &["--threshold-pct", "10", "--json", old_p, slower_p]);
    assert_eq!(out.status.code(), Some(0));
    let js = stdout(&out);
    assert!(js.contains("\"schema\": \"tlt-benchcmp/v1\""));
    // All three wall_ms keys (workload jobs1/jobsN and the total) moved +50%.
    assert!(js.contains("\"regressions\": 3"), "json: {js}");

    // debug-vs-release provenance: refuse without --force, warn with it.
    let out = run(bin, &[old_p, debug_p]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("build_profile"));
    let out = run(bin, &["--force", old_p, debug_p]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));

    // Malformed input and bad usage both exit 2.
    let bad = tmp("cmp-bad.json", "{\"schema\": ");
    let out = run(bin, &[old_p, bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(bin, &[old_p]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));

    for p in [old, slower, debug, bad] {
        let _ = std::fs::remove_file(p);
    }
}
